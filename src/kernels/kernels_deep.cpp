// Deep / irregular loop-structure kernels: the extended suite exercising
// ZOLC geometries beyond the paper prototype. tiled_mm needs 6 loop levels
// (possible at the paper geometry now that nesting is not capped at the
// pool-register count), deepnest10 needs 10 (an extended geometry to be
// fully hardware-managed), and wavelet4 stresses task sequencing with many
// sibling loops of different trip counts.
#include "kernels/kernels.hpp"
#include "kernels/kernels_impl.hpp"

#include <algorithm>
#include <vector>

namespace zolcsim::kernels {

namespace {

namespace b = isa::build;
using codegen::KernelBuilder;
using codegen::KNode;
using detail::check_words;
using detail::wadd;
using detail::wmul;

// ---------------- tiled_mm ----------------
// Blocked matrix multiply C = A x B (DxD, T=4 tiles): the classic 6-deep
// ii/jj/kk/i/j/k nest, with the innermost k loop accumulating in a register
// and C[row][col] updated in memory once per (ii,jj,kk,i,j).

class TiledMm final : public Kernel {
 public:
  std::string_view name() const override { return "tiled_mm"; }
  std::string_view description() const override {
    return "blocked matrix multiply DxD, T=4 (6-deep nest)";
  }

  static constexpr unsigned kTile = 4;
  static unsigned d(const KernelEnv& env) { return 8 * env.scale; }

  std::vector<KNode> build(const KernelEnv& env) const override {
    const auto dim = static_cast<std::int32_t>(d(env));
    const auto tiles = static_cast<std::int32_t>(d(env) / kTile);
    KernelBuilder kb;
    kb.li(19, static_cast<std::int32_t>(env.in_base));
    kb.li(20, static_cast<std::int32_t>(env.in2_base));
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.li(22, dim * 4);  // row stride in bytes
    kb.for_count(1, 0, tiles, 1, [&] {          // ii
      kb.for_count(2, 0, tiles, 1, [&] {        // jj
        kb.for_count(3, 0, tiles, 1, [&] {      // kk
          kb.for_count(4, 0, kTile, 1, [&] {    // i
            kb.for_count(5, 0, kTile, 1, [&] {  // j
              kb.op(b::sll(10, 1, 2));
              kb.op(b::add(10, 10, 4));         // row = ii*T + i
              kb.op(b::sll(11, 2, 2));
              kb.op(b::add(11, 11, 5));         // col = jj*T + j
              kb.op(b::mul(12, 10, 22));
              kb.op(b::sll(13, 11, 2));
              kb.op(b::add(12, 12, 13));
              kb.op(b::add(12, 12, 9));         // &C[row][col]
              kb.op(b::lw(16, 0, 12));          // running C value
              kb.for_count(6, 0, kTile, 1, [&] {  // k
                kb.op(b::sll(13, 3, 2));
                kb.op(b::add(13, 13, 6));       // dep = kk*T + k
                kb.op(b::mul(14, 10, 22));
                kb.op(b::sll(15, 13, 2));
                kb.op(b::add(14, 14, 15));
                kb.op(b::add(14, 14, 19));      // &A[row][dep]
                kb.op(b::lw(17, 0, 14));
                kb.op(b::mul(14, 13, 22));
                kb.op(b::sll(15, 11, 2));
                kb.op(b::add(14, 14, 15));
                kb.op(b::add(14, 14, 20));      // &B[dep][col]
                kb.op(b::lw(18, 0, 14));
                kb.op(b::mac(16, 17, 18));
              });
              kb.op(b::sw(16, 0, 12));
            });
          });
        });
      });
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 13);
    const unsigned dim = d(env);
    for (unsigned i = 0; i < dim * dim; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-100, 100)));
      memory.write32(env.in2_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-100, 100)));
      memory.write32(env.out_base + i * 4, 0);  // C starts zeroed
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 13);
    const unsigned dim = d(env);
    std::vector<std::int32_t> a(dim * dim), bm(dim * dim);
    for (unsigned i = 0; i < dim * dim; ++i) {
      a[i] = rng.range(-100, 100);
      bm[i] = rng.range(-100, 100);
    }
    std::vector<std::int32_t> c(dim * dim);
    for (unsigned i = 0; i < dim; ++i) {
      for (unsigned j = 0; j < dim; ++j) {
        std::int32_t acc = 0;
        for (unsigned k = 0; k < dim; ++k) {
          acc = wadd(acc, wmul(a[i * dim + k], bm[k * dim + j]));
        }
        c[i * dim + j] = acc;
      }
    }
    return check_words(memory, env.out_base, c, "tiled_mm");
  }
};

// ---------------- deepnest10 ----------------
// A 10-deep blocked accumulation nest (nine 2-trip levels around a 4-trip
// innermost loop = 2048 streamed elements): the smallest kernel that needs
// more than the paper's 8 loop entries to run fully hardware-managed.

class DeepNest10 final : public Kernel {
 public:
  std::string_view name() const override { return "deepnest10"; }
  std::string_view description() const override {
    return "10-deep blocked sum/max reduction (2048 elements)";
  }

  static constexpr unsigned kElements = 2048;  // 2^9 * 4

  std::vector<KNode> build(const KernelEnv& env) const override {
    KernelBuilder kb;
    kb.li(11, static_cast<std::int32_t>(env.in_base));  // stream pointer
    kb.li(16, 0);                                       // sum
    kb.li(17, -32768);                                  // running max
    const std::function<void(unsigned)> nest = [&](unsigned level) {
      if (level == 10) {
        kb.op(b::lw(12, 0, 11));
        kb.op(b::add(16, 16, 12));
        kb.op(b::max(17, 17, 12));
        kb.op(b::addi(11, 11, 4));
        return;
      }
      const std::int32_t trip = level == 9 ? 4 : 2;
      kb.for_count(static_cast<std::uint8_t>(level + 1), 0, trip, 1,
                   [&] { nest(level + 1); });
    };
    nest(0);
    kb.li(13, static_cast<std::int32_t>(env.out_base));
    kb.op(b::sw(16, 0, 13));
    kb.op(b::sw(17, 4, 13));
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 14);
    for (unsigned i = 0; i < kElements; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-1000, 1000)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 14);
    std::int32_t sum = 0;
    std::int32_t best = -32768;
    for (unsigned i = 0; i < kElements; ++i) {
      const std::int32_t v = rng.range(-1000, 1000);
      sum = wadd(sum, v);
      best = std::max(best, v);
    }
    return check_words(memory, env.out_base, {sum, best}, "deepnest10");
  }
};

// ---------------- wavelet4 ----------------
// 4-level Haar wavelet decomposition of 16-sample frames: per level,
// approx[i] = (x[2i] + x[2i+1]) >> 1 and detail[i] = (x[2i] - x[2i+1]) >> 1.
// The level loops have different trip counts (8/4/2/1), so every frame runs
// a chain of sequential hardware loops -- a task-sequencing stress the
// single-loop controllers cannot express.

class Wavelet4 final : public Kernel {
 public:
  std::string_view name() const override { return "wavelet4"; }
  std::string_view description() const override {
    return "4-level Haar wavelet, 16-sample frames (loop chain per frame)";
  }

  static constexpr unsigned kFrameLen = 16;
  static unsigned frames(const KernelEnv& env) { return 4 * env.scale; }

  std::vector<KNode> build(const KernelEnv& env) const override {
    const auto n_frames = static_cast<std::int32_t>(frames(env));
    KernelBuilder kb;
    kb.li(19, static_cast<std::int32_t>(env.in_base));
    kb.li(20, static_cast<std::int32_t>(env.aux_base));       // ping
    kb.li(22, static_cast<std::int32_t>(env.aux_base + 64));  // pong
    kb.li(21, static_cast<std::int32_t>(env.out_base));
    kb.for_count(1, 0, n_frames, 1, [&] {  // frame
      kb.op(b::sll(10, 1, 6));
      kb.op(b::add(10, 10, 19));  // frame input
      kb.op(b::sll(9, 1, 6));
      kb.op(b::add(9, 9, 21));
      kb.op(b::add(15, 9, 0));    // detail output cursor
      const auto level = [&kb](std::int32_t len, std::uint8_t src,
                               std::uint8_t dst) {
        kb.op(b::add(13, src, 0));
        kb.op(b::add(14, dst, 0));
        kb.for_count(2, 0, len, 1, [&] {
          kb.op(b::lw(11, 0, 13));
          kb.op(b::lw(12, 4, 13));
          kb.op(b::add(16, 11, 12));
          kb.op(b::sra(16, 16, 1));   // approx
          kb.op(b::sub(17, 11, 12));
          kb.op(b::sra(17, 17, 1));   // detail
          kb.op(b::sw(16, 0, 14));
          kb.op(b::sw(17, 0, 15));
          kb.op(b::addi(13, 13, 8));
          kb.op(b::addi(14, 14, 4));
          kb.op(b::addi(15, 15, 4));
        });
      };
      level(8, 10, 20);  // in   -> ping
      level(4, 20, 22);  // ping -> pong
      level(2, 22, 20);  // pong -> ping
      level(1, 20, 22);  // ping -> pong
      kb.op(b::lw(16, 0, 22));
      kb.op(b::sw(16, 0, 15));  // final approx lands at out[15]
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 15);
    for (unsigned i = 0; i < frames(env) * kFrameLen; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-512, 511)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 15);
    std::vector<std::int32_t> expected;
    for (unsigned f = 0; f < frames(env); ++f) {
      std::vector<std::int32_t> cur(kFrameLen);
      for (auto& v : cur) v = rng.range(-512, 511);
      std::vector<std::int32_t> details;
      while (cur.size() > 1) {
        std::vector<std::int32_t> next(cur.size() / 2);
        for (unsigned i = 0; i < next.size(); ++i) {
          next[i] = (cur[2 * i] + cur[2 * i + 1]) >> 1;
          details.push_back((cur[2 * i] - cur[2 * i + 1]) >> 1);
        }
        cur = std::move(next);
      }
      expected.insert(expected.end(), details.begin(), details.end());
      expected.push_back(cur[0]);
    }
    return check_words(memory, env.out_base, expected, "wavelet4");
  }
};

}  // namespace

std::unique_ptr<Kernel> make_tiled_mm() { return std::make_unique<TiledMm>(); }
std::unique_ptr<Kernel> make_deepnest10() {
  return std::make_unique<DeepNest10>();
}
std::unique_ptr<Kernel> make_wavelet4() {
  return std::make_unique<Wavelet4>();
}

}  // namespace zolcsim::kernels
