// Vector / filter / CRC kernels: dotprod, vecmax, fir, iir_biquad, crc32.
#include "kernels/kernels.hpp"
#include "kernels/kernels_impl.hpp"

namespace zolcsim::kernels {

namespace {

namespace b = isa::build;
using codegen::KernelBuilder;
using codegen::KNode;
using detail::check_words;
using detail::wadd;
using detail::wmul;
using isa::Opcode;

// ---------------- dotprod ----------------
// acc = sum a[i] * b[i]; the canonical tight MAC loop.

class DotProd final : public Kernel {
 public:
  std::string_view name() const override { return "dotprod"; }
  std::string_view description() const override {
    return "vector dot product (MAC inner loop)";
  }

  static unsigned n(const KernelEnv& env) { return 64 * env.scale; }

  std::vector<KNode> build(const KernelEnv& env) const override {
    KernelBuilder kb;
    kb.li(7, static_cast<std::int32_t>(env.in_base));
    kb.li(8, static_cast<std::int32_t>(env.in2_base));
    kb.li(16, 0);
    kb.for_count(1, 0, static_cast<std::int32_t>(n(env)), 1, [&] {
      kb.op(b::lw(2, 0, 7));
      kb.op(b::lw(3, 0, 8));
      kb.op(b::mac(16, 2, 3));
      kb.op(b::addi(7, 7, 4));
      kb.op(b::addi(8, 8, 4));
    });
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.op(b::sw(16, 0, 9));
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed);
    for (unsigned i = 0; i < n(env); ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-1000, 1000)));
      memory.write32(env.in2_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-1000, 1000)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed);
    std::int32_t acc = 0;
    for (unsigned i = 0; i < n(env); ++i) {
      const std::int32_t a = rng.range(-1000, 1000);
      const std::int32_t v = rng.range(-1000, 1000);
      acc = wadd(acc, wmul(a, v));
    }
    return check_words(memory, env.out_base, {acc}, "dotprod");
  }
};

// ---------------- vecmax ----------------
// Max value and its (first) position; the conditional-update idiom.

class VecMax final : public Kernel {
 public:
  std::string_view name() const override { return "vecmax"; }
  std::string_view description() const override {
    return "vector maximum + argmax (conditional update)";
  }

  static unsigned n(const KernelEnv& env) { return 64 * env.scale; }

  std::vector<KNode> build(const KernelEnv& env) const override {
    KernelBuilder kb;
    kb.li(7, static_cast<std::int32_t>(env.in_base));
    kb.li(16, INT32_MIN);
    kb.li(17, 0);
    kb.for_count(1, 0, static_cast<std::int32_t>(n(env)), 1, [&] {
      kb.op(b::lw(2, 0, 7));
      kb.op(b::addi(7, 7, 4));
      kb.if_cond(Opcode::kBlt, 16, 2, [&] {  // cur < value
        kb.op(b::add(16, 2, 0));
        kb.op(b::add(17, 1, 0));             // reads the loop index
      });
    });
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.op(b::sw(16, 0, 9));
    kb.op(b::sw(17, 4, 9));
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 1);
    for (unsigned i = 0; i < n(env); ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-100000, 100000)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 1);
    std::int32_t best = INT32_MIN;
    std::int32_t arg = 0;
    for (unsigned i = 0; i < n(env); ++i) {
      const std::int32_t v = rng.range(-100000, 100000);
      if (best < v) {
        best = v;
        arg = static_cast<std::int32_t>(i);
      }
    }
    return check_words(memory, env.out_base, {best, arg}, "vecmax");
  }
};

// ---------------- fir ----------------
// y[i] = sum_k x[i+k] * h[k]; 2-deep nest, rolling window pointer.

class Fir final : public Kernel {
 public:
  std::string_view name() const override { return "fir"; }
  std::string_view description() const override {
    return "FIR filter (16 taps, rolling window)";
  }

  static unsigned n(const KernelEnv& env) { return 32 * env.scale; }
  static constexpr unsigned kTaps = 16;

  std::vector<KNode> build(const KernelEnv& env) const override {
    KernelBuilder kb;
    kb.li(18, static_cast<std::int32_t>(env.in_base));   // rolling x start
    kb.li(19, static_cast<std::int32_t>(env.in2_base));  // taps base
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.for_count(1, 0, static_cast<std::int32_t>(n(env)), 1, [&] {
      kb.op(b::add(7, 18, 0));  // px = xstart
      kb.op(b::add(8, 19, 0));  // ph = taps
      kb.op(b::addi(16, 0, 0)); // acc
      kb.for_count(2, 0, kTaps, 1, [&] {
        kb.op(b::lw(3, 0, 7));
        kb.op(b::lw(4, 0, 8));
        kb.op(b::mac(16, 3, 4));
        kb.op(b::addi(7, 7, 4));
        kb.op(b::addi(8, 8, 4));
      });
      kb.op(b::sw(16, 0, 9));
      kb.op(b::addi(9, 9, 4));
      kb.op(b::addi(18, 18, 4));
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 2);
    for (unsigned i = 0; i < n(env) + kTaps; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-2048, 2047)));
    }
    for (unsigned k = 0; k < kTaps; ++k) {
      memory.write32(env.in2_base + k * 4,
                     static_cast<std::uint32_t>(rng.range(-512, 511)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 2);
    std::vector<std::int32_t> x(n(env) + kTaps);
    std::vector<std::int32_t> h(kTaps);
    for (auto& v : x) v = rng.range(-2048, 2047);
    for (auto& v : h) v = rng.range(-512, 511);
    std::vector<std::int32_t> y(n(env));
    for (unsigned i = 0; i < n(env); ++i) {
      std::int32_t acc = 0;
      for (unsigned k = 0; k < kTaps; ++k) {
        acc = wadd(acc, wmul(x[i + k], h[k]));
      }
      y[i] = acc;
    }
    return check_words(memory, env.out_base, y, "fir");
  }
};

// ---------------- iir_biquad ----------------
// Cascade of 4 direct-form-I biquads, Q14 coefficients, states in memory.

class IirBiquad final : public Kernel {
 public:
  std::string_view name() const override { return "iir_biquad"; }
  std::string_view description() const override {
    return "IIR filter: cascade of 4 biquads (Q14)";
  }

  static unsigned n(const KernelEnv& env) { return 64 * env.scale; }
  static constexpr unsigned kBiquads = 4;

  std::vector<KNode> build(const KernelEnv& env) const override {
    KernelBuilder kb;
    kb.li(7, static_cast<std::int32_t>(env.in_base));
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.li(19, static_cast<std::int32_t>(env.in2_base));  // coefficients
    kb.li(20, static_cast<std::int32_t>(env.aux_base));  // states
    kb.for_count(1, 0, static_cast<std::int32_t>(n(env)), 1, [&] {
      kb.op(b::lw(16, 0, 7));
      kb.op(b::addi(7, 7, 4));
      kb.op(b::add(10, 19, 0));  // coef pointer
      kb.op(b::add(11, 20, 0));  // state pointer
      kb.for_count(2, 0, kBiquads, 1, [&] {
        kb.op(b::lw(3, 0, 10));    // b0
        kb.op(b::lw(4, 4, 10));    // b1
        kb.op(b::lw(5, 8, 10));    // b2
        kb.op(b::lw(6, 12, 10));   // -a1
        kb.op(b::lw(12, 16, 10));  // -a2
        kb.op(b::lw(13, 0, 11));   // x1
        kb.op(b::lw(14, 4, 11));   // x2
        kb.op(b::lw(15, 8, 11));   // y1
        kb.op(b::lw(17, 12, 11));  // y2
        kb.op(b::mul(21, 3, 16));
        kb.op(b::mac(21, 4, 13));
        kb.op(b::mac(21, 5, 14));
        kb.op(b::mac(21, 6, 15));
        kb.op(b::mac(21, 12, 17));
        kb.op(b::sra(21, 21, 14));
        kb.op(b::sw(13, 4, 11));   // x2 = x1
        kb.op(b::sw(16, 0, 11));   // x1 = x
        kb.op(b::sw(15, 12, 11));  // y2 = y1
        kb.op(b::sw(21, 8, 11));   // y1 = y
        kb.op(b::add(16, 21, 0));  // cascade
        kb.op(b::addi(10, 10, 20));
        kb.op(b::addi(11, 11, 16));
      });
      kb.op(b::sw(16, 0, 9));
      kb.op(b::addi(9, 9, 4));
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 3);
    for (unsigned i = 0; i < n(env); ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-1000, 1000)));
    }
    for (unsigned q = 0; q < kBiquads; ++q) {
      // Mild, stable-ish Q14 coefficients.
      const std::int32_t coefs[5] = {
          rng.range(4000, 12000), rng.range(-6000, 6000),
          rng.range(-6000, 6000), rng.range(-5000, 5000),
          rng.range(-3000, 3000)};
      for (unsigned c = 0; c < 5; ++c) {
        memory.write32(env.in2_base + (q * 5 + c) * 4,
                       static_cast<std::uint32_t>(coefs[c]));
      }
      for (unsigned s = 0; s < 4; ++s) {
        memory.write32(env.aux_base + (q * 4 + s) * 4, 0);
      }
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 3);
    std::vector<std::int32_t> x(n(env));
    for (auto& v : x) v = rng.range(-1000, 1000);
    std::int32_t coef[kBiquads][5];
    std::int32_t state[kBiquads][4] = {};
    for (unsigned q = 0; q < kBiquads; ++q) {
      coef[q][0] = rng.range(4000, 12000);
      coef[q][1] = rng.range(-6000, 6000);
      coef[q][2] = rng.range(-6000, 6000);
      coef[q][3] = rng.range(-5000, 5000);
      coef[q][4] = rng.range(-3000, 3000);
    }
    std::vector<std::int32_t> y(n(env));
    for (unsigned i = 0; i < n(env); ++i) {
      std::int32_t v = x[i];
      for (unsigned q = 0; q < kBiquads; ++q) {
        std::int32_t acc = wmul(coef[q][0], v);
        acc = wadd(acc, wmul(coef[q][1], state[q][0]));
        acc = wadd(acc, wmul(coef[q][2], state[q][1]));
        acc = wadd(acc, wmul(coef[q][3], state[q][2]));
        acc = wadd(acc, wmul(coef[q][4], state[q][3]));
        acc >>= 14;
        state[q][1] = state[q][0];
        state[q][0] = v;
        state[q][3] = state[q][2];
        state[q][2] = acc;
        v = acc;
      }
      y[i] = v;
    }
    return check_words(memory, env.out_base, y, "iir_biquad");
  }
};

// ---------------- crc32 ----------------
// Bit-serial, branchless reflected CRC-32; 8-trip inner hardware loop.

class Crc32 final : public Kernel {
 public:
  std::string_view name() const override { return "crc32"; }
  std::string_view description() const override {
    return "bit-serial CRC-32 (branchless inner loop)";
  }

  static unsigned n(const KernelEnv& env) { return 128 * env.scale; }

  std::vector<KNode> build(const KernelEnv& env) const override {
    KernelBuilder kb;
    kb.li(7, static_cast<std::int32_t>(env.in_base));
    kb.li(16, -1);                                       // crc = 0xFFFFFFFF
    kb.li(19, static_cast<std::int32_t>(0xEDB88320u));   // polynomial
    kb.for_count(1, 0, static_cast<std::int32_t>(n(env)), 1, [&] {
      kb.op(b::lbu(2, 0, 7));
      kb.op(b::addi(7, 7, 1));
      kb.op(b::xor_(16, 16, 2));
      kb.for_count(3, 0, 8, 1, [&] {
        kb.op(b::andi(4, 16, 1));
        kb.op(b::sub(4, 0, 4));     // mask = -(crc & 1)
        kb.op(b::and_(4, 4, 19));
        kb.op(b::srl(16, 16, 1));
        kb.op(b::xor_(16, 16, 4));
      });
    });
    kb.li(5, -1);
    kb.op(b::xor_(16, 16, 5));
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.op(b::sw(16, 0, 9));
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 4);
    for (unsigned i = 0; i < n(env); ++i) {
      memory.write8(env.in_base + i,
                    static_cast<std::uint8_t>(rng.next() & 0xFF));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 4);
    std::uint32_t crc = 0xFFFF'FFFFu;
    for (unsigned i = 0; i < n(env); ++i) {
      crc ^= rng.next() & 0xFFu;
      for (int bit = 0; bit < 8; ++bit) {
        const std::uint32_t mask = 0u - (crc & 1u);
        crc = (crc >> 1) ^ (0xEDB88320u & mask);
      }
    }
    crc ^= 0xFFFF'FFFFu;
    return check_words(memory, env.out_base,
                       {static_cast<std::int32_t>(crc)}, "crc32");
  }
};

}  // namespace

std::unique_ptr<Kernel> make_dotprod() { return std::make_unique<DotProd>(); }
std::unique_ptr<Kernel> make_vecmax() { return std::make_unique<VecMax>(); }
std::unique_ptr<Kernel> make_fir() { return std::make_unique<Fir>(); }
std::unique_ptr<Kernel> make_iir_biquad() {
  return std::make_unique<IirBiquad>();
}
std::unique_ptr<Kernel> make_crc32() { return std::make_unique<Crc32>(); }

}  // namespace zolcsim::kernels
