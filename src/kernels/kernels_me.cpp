// Motion-estimation kernels: me_fsbm (full-search block matching, the
// paper's motivating 4-deep nest) and me_tss (three-step search, with a
// data-dependent early exit that exercises ZOLCfull's candidate-exit
// records).
#include "kernels/kernels.hpp"
#include "kernels/kernels_impl.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>

namespace zolcsim::kernels {

namespace {

namespace b = isa::build;
using codegen::KernelBuilder;
using codegen::KNode;
using detail::check_words;
using isa::Opcode;

// ---------------- me_fsbm ----------------
// Exhaustive 9x9 candidate search of an 8x8 block in a 16x16 window.

class MeFsbm final : public Kernel {
 public:
  std::string_view name() const override { return "me_fsbm"; }
  std::string_view description() const override {
    return "full-search block matching 8x8 in 16x16 (4-deep nest)";
  }

  static constexpr unsigned kWin = 16;
  static constexpr unsigned kBlk = 8;
  static constexpr unsigned kCand = kWin - kBlk + 1;  // 9

  std::vector<KNode> build(const KernelEnv& env) const override {
    KernelBuilder kb;
    kb.li(19, static_cast<std::int32_t>(env.in_base));   // window
    kb.li(20, static_cast<std::int32_t>(env.in2_base));  // block
    kb.li(22, kWin * 4);                                 // window row stride
    kb.li(16, INT32_MAX);                                // best SAD
    kb.li(17, 0);                                        // best dy
    kb.li(18, 0);                                        // best dx
    kb.for_count(1, 0, kCand, 1, [&] {        // dy
      kb.for_count(2, 0, kCand, 1, [&] {      // dx
        kb.op(b::addi(21, 0, 0));             // sad
        kb.op(b::mul(10, 1, 22));
        kb.op(b::add(10, 10, 19));
        kb.op(b::sll(11, 2, 2));
        kb.op(b::add(10, 10, 11));            // window candidate pointer
        kb.op(b::add(11, 20, 0));             // block pointer
        kb.for_count(3, 0, kBlk, 1, [&] {     // y
          kb.for_count(4, 0, kBlk, 1, [&] {   // x
            kb.op(b::lw(5, 0, 10));
            kb.op(b::lw(6, 0, 11));
            kb.op(b::sub(5, 5, 6));
            kb.op(b::abs_(5, 5));
            kb.op(b::add(21, 21, 5));
            kb.op(b::addi(10, 10, 4));
            kb.op(b::addi(11, 11, 4));
          });
          kb.op(b::addi(10, 10, (kWin - kBlk) * 4));  // next window row
        });
        kb.if_cond(Opcode::kBlt, 21, 16, [&] {  // sad < best
          kb.op(b::add(16, 21, 0));
          kb.op(b::add(17, 1, 0));
          kb.op(b::add(18, 2, 0));
        });
      });
    });
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.op(b::sw(16, 0, 9));
    kb.op(b::sw(17, 4, 9));
    kb.op(b::sw(18, 8, 9));
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 10);
    for (unsigned i = 0; i < kWin * kWin; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(0, 255)));
    }
    // Block = window contents at (3, 5) plus mild noise, so there is a
    // clear (but not zero-SAD) winner.
    for (unsigned y = 0; y < kBlk; ++y) {
      for (unsigned x = 0; x < kBlk; ++x) {
        const auto v = static_cast<std::int32_t>(
            memory.read32(env.in_base + ((y + 3) * kWin + (x + 5)) * 4));
        const std::int32_t noisy =
            std::clamp(v + rng.range(-2, 2), 0, 255);
        memory.write32(env.in2_base + (y * kBlk + x) * 4,
                       static_cast<std::uint32_t>(noisy));
      }
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    // Re-derive inputs exactly as setup did.
    Lcg rng(env.seed + 10);
    std::array<std::int32_t, kWin * kWin> win{};
    for (auto& v : win) v = rng.range(0, 255);
    std::array<std::int32_t, kBlk * kBlk> blk{};
    for (unsigned y = 0; y < kBlk; ++y) {
      for (unsigned x = 0; x < kBlk; ++x) {
        blk[y * kBlk + x] = std::clamp(
            win[(y + 3) * kWin + (x + 5)] + rng.range(-2, 2), 0, 255);
      }
    }
    std::int32_t best = INT32_MAX, bdy = 0, bdx = 0;
    for (unsigned dy = 0; dy < kCand; ++dy) {
      for (unsigned dx = 0; dx < kCand; ++dx) {
        std::int32_t sad = 0;
        for (unsigned y = 0; y < kBlk; ++y) {
          for (unsigned x = 0; x < kBlk; ++x) {
            sad += std::abs(win[(dy + y) * kWin + dx + x] -
                            blk[y * kBlk + x]);
          }
        }
        if (sad < best) {
          best = sad;
          bdy = static_cast<std::int32_t>(dy);
          bdx = static_cast<std::int32_t>(dx);
        }
      }
    }
    return check_words(memory, env.out_base, {best, bdy, bdx}, "me_fsbm");
  }
};

// ---------------- me_tss ----------------
// Three-step search around a moving center, with an early exit (perfect
// match) from the candidate loop -- a true multi-exit loop structure.

class MeTss final : public Kernel {
 public:
  std::string_view name() const override { return "me_tss"; }
  std::string_view description() const override {
    return "three-step search with perfect-match early exit (multi-exit)";
  }

  static constexpr unsigned kWin = 24;     // positions 0..16
  static constexpr unsigned kBlk = 8;
  static constexpr std::int32_t kMaxPos = kWin - kBlk;  // 16
  static constexpr std::int32_t kCenter0 = 8;
  static constexpr unsigned kMatchY = 4, kMatchX = 12;

  std::vector<KNode> build(const KernelEnv& env) const override {
    KernelBuilder kb;
    kb.li(31, static_cast<std::int32_t>(env.in_base));   // window
    kb.li(9, static_cast<std::int32_t>(env.in2_base));   // block
    kb.li(28, static_cast<std::int32_t>(env.aux_base));          // dy table
    kb.li(29, static_cast<std::int32_t>(env.aux_base + 0x100));  // dx table
    kb.li(22, kWin * 4);
    kb.li(23, 4);
    kb.li(30, kMaxPos);
    kb.li(17, kCenter0);  // center y
    kb.li(18, kCenter0);  // center x
    kb.for_count(1, 0, 3, 1, [&] {            // step index: step = 4 >> s
      kb.op(b::srlv(16, 1, 23));
      kb.li(19, INT32_MAX);                   // best SAD this step
      kb.op(b::add(20, 17, 0));               // best y = center
      kb.op(b::add(21, 18, 0));               // best x = center
      kb.for_count(2, 0, 9, 1, [&] {          // candidates
        kb.op(b::sll(3, 2, 2));
        kb.op(b::add(3, 3, 28));
        kb.op(b::lw(4, 0, 3));                // dy in {-1,0,1}
        kb.op(b::sll(3, 2, 2));
        kb.op(b::add(3, 3, 29));
        kb.op(b::lw(5, 0, 3));                // dx
        kb.op(b::mul(4, 4, 16));
        kb.op(b::add(4, 4, 17));              // cand y
        kb.op(b::mul(5, 5, 16));
        kb.op(b::add(5, 5, 18));              // cand x
        kb.op(b::max(4, 4, 0));
        kb.op(b::min(4, 4, 30));
        kb.op(b::max(5, 5, 0));
        kb.op(b::min(5, 5, 30));
        kb.op(b::addi(6, 0, 0));              // sad
        kb.op(b::mul(7, 4, 22));
        kb.op(b::add(7, 7, 31));
        kb.op(b::sll(3, 5, 2));
        kb.op(b::add(7, 7, 3));               // window pointer
        kb.op(b::add(8, 9, 0));               // block pointer
        kb.for_count(12, 0, kBlk, 1, [&] {    // y
          kb.for_count(13, 0, kBlk, 1, [&] {  // x
            kb.op(b::lw(14, 0, 7));
            kb.op(b::lw(15, 0, 8));
            kb.op(b::sub(14, 14, 15));
            kb.op(b::abs_(14, 14));
            kb.op(b::add(6, 6, 14));
            kb.op(b::addi(7, 7, 4));
            kb.op(b::addi(8, 8, 4));
          });
          kb.op(b::addi(7, 7, (kWin - kBlk) * 4));
        });
        kb.if_cond(Opcode::kBlt, 6, 19, [&] {  // sad < best
          kb.op(b::add(19, 6, 0));
          kb.op(b::add(20, 4, 0));
          kb.op(b::add(21, 5, 0));
        });
        kb.break_if(Opcode::kBeq, 6, 0);       // perfect match: stop scanning
      });
      kb.op(b::add(17, 20, 0));  // move center to the best candidate
      kb.op(b::add(18, 21, 0));
    });
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.op(b::sw(17, 0, 9));
    kb.op(b::sw(18, 4, 9));
    kb.op(b::sw(19, 8, 9));
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 11);
    std::array<std::int32_t, kWin * kWin> win{};
    for (auto& v : win) v = rng.range(0, 255);
    for (unsigned i = 0; i < kWin * kWin; ++i) {
      memory.write32(env.in_base + i * 4, static_cast<std::uint32_t>(win[i]));
    }
    // Block is an exact copy at (kMatchY, kMatchX): the step-4 ring around
    // the initial center reaches it, so the early exit fires.
    for (unsigned y = 0; y < kBlk; ++y) {
      for (unsigned x = 0; x < kBlk; ++x) {
        memory.write32(
            env.in2_base + (y * kBlk + x) * 4,
            static_cast<std::uint32_t>(win[(y + kMatchY) * kWin + x +
                                           kMatchX]));
      }
    }
    static constexpr std::int32_t dy[9] = {-1, -1, -1, 0, 0, 0, 1, 1, 1};
    static constexpr std::int32_t dx[9] = {-1, 0, 1, -1, 0, 1, -1, 0, 1};
    for (unsigned i = 0; i < 9; ++i) {
      memory.write32(env.aux_base + i * 4, static_cast<std::uint32_t>(dy[i]));
      memory.write32(env.aux_base + 0x100 + i * 4,
                     static_cast<std::uint32_t>(dx[i]));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 11);
    std::array<std::int32_t, kWin * kWin> win{};
    for (auto& v : win) v = rng.range(0, 255);
    std::array<std::int32_t, kBlk * kBlk> blk{};
    for (unsigned y = 0; y < kBlk; ++y) {
      for (unsigned x = 0; x < kBlk; ++x) {
        blk[y * kBlk + x] = win[(y + kMatchY) * kWin + x + kMatchX];
      }
    }
    static constexpr std::int32_t dy[9] = {-1, -1, -1, 0, 0, 0, 1, 1, 1};
    static constexpr std::int32_t dx[9] = {-1, 0, 1, -1, 0, 1, -1, 0, 1};
    std::int32_t cy = kCenter0, cx = kCenter0;
    std::int32_t best = 0;
    for (int s = 0; s < 3; ++s) {
      const std::int32_t step = 4 >> s;
      best = INT32_MAX;
      std::int32_t by = cy, bx = cx;
      for (int c = 0; c < 9; ++c) {
        const std::int32_t y0 =
            std::clamp(cy + dy[c] * step, 0, kMaxPos);
        const std::int32_t x0 =
            std::clamp(cx + dx[c] * step, 0, kMaxPos);
        std::int32_t sad = 0;
        for (unsigned y = 0; y < kBlk; ++y) {
          for (unsigned x = 0; x < kBlk; ++x) {
            sad += std::abs(
                win[(static_cast<unsigned>(y0) + y) * kWin +
                    static_cast<unsigned>(x0) + x] -
                blk[y * kBlk + x]);
          }
        }
        if (sad < best) {
          best = sad;
          by = y0;
          bx = x0;
        }
        if (sad == 0) break;  // mirrors the kernel's early exit
      }
      cy = by;
      cx = bx;
    }
    return check_words(memory, env.out_base, {cy, cx, best}, "me_tss");
  }
};

}  // namespace

std::unique_ptr<Kernel> make_me_fsbm() { return std::make_unique<MeFsbm>(); }
std::unique_ptr<Kernel> make_me_tss() { return std::make_unique<MeTss>(); }

}  // namespace zolcsim::kernels
