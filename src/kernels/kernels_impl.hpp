// Internal factory declarations for the kernel registry.
#ifndef ZOLCSIM_KERNELS_KERNELS_IMPL_HPP
#define ZOLCSIM_KERNELS_KERNELS_IMPL_HPP

#include <memory>

#include "kernels/kernels.hpp"

namespace zolcsim::kernels {

std::unique_ptr<Kernel> make_dotprod();
std::unique_ptr<Kernel> make_vecmax();
std::unique_ptr<Kernel> make_fir();
std::unique_ptr<Kernel> make_iir_biquad();
std::unique_ptr<Kernel> make_crc32();
std::unique_ptr<Kernel> make_matmul();
std::unique_ptr<Kernel> make_conv2d();
std::unique_ptr<Kernel> make_sobel();
std::unique_ptr<Kernel> make_dct8x8();
std::unique_ptr<Kernel> make_fft();
std::unique_ptr<Kernel> make_me_fsbm();
std::unique_ptr<Kernel> make_me_tss();
std::unique_ptr<Kernel> make_tiled_mm();
std::unique_ptr<Kernel> make_deepnest10();
std::unique_ptr<Kernel> make_wavelet4();

}  // namespace zolcsim::kernels

#endif  // ZOLCSIM_KERNELS_KERNELS_IMPL_HPP
