#include "kernels/kernels.hpp"
#include "kernels/kernels_impl.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace zolcsim::kernels {

const std::vector<std::unique_ptr<Kernel>>& kernel_registry() {
  static const auto* kernels = [] {
    auto* v = new std::vector<std::unique_ptr<Kernel>>();
    v->push_back(make_dotprod());
    v->push_back(make_vecmax());
    v->push_back(make_fir());
    v->push_back(make_iir_biquad());
    v->push_back(make_crc32());
    v->push_back(make_matmul());
    v->push_back(make_conv2d());
    v->push_back(make_sobel());
    v->push_back(make_dct8x8());
    v->push_back(make_fft());
    v->push_back(make_me_fsbm());
    v->push_back(make_me_tss());
    return v;
  }();
  return *kernels;
}

const std::vector<std::unique_ptr<Kernel>>& extended_kernel_registry() {
  static const auto* kernels = [] {
    auto* v = new std::vector<std::unique_ptr<Kernel>>();
    v->push_back(make_tiled_mm());
    v->push_back(make_deepnest10());
    v->push_back(make_wavelet4());
    return v;
  }();
  return *kernels;
}

const Kernel* find_kernel(std::string_view name) {
  for (const auto& kernel : kernel_registry()) {
    if (kernel->name() == name) return kernel.get();
  }
  for (const auto& kernel : extended_kernel_registry()) {
    if (kernel->name() == name) return kernel.get();
  }
  return nullptr;
}

namespace detail {

Result<void> check_words(const mem::Memory& memory, std::uint32_t addr,
                         const std::vector<std::int32_t>& expected,
                         std::string_view what) {
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const auto got = static_cast<std::int32_t>(
        memory.read32(addr + static_cast<std::uint32_t>(i) * 4));
    if (got != expected[i]) {
      std::ostringstream os;
      os << what << "[" << i << "]: expected " << expected[i] << ", got "
         << got << " at " << hex32(addr + static_cast<std::uint32_t>(i) * 4);
      return Error{ErrorCode::kVerifyMismatch, os.str()};
    }
  }
  return {};
}

}  // namespace detail
}  // namespace zolcsim::kernels
