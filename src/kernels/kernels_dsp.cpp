// fft: radix-2 decimation-in-time FFT with constant loop bounds per stage
// (butterfly indices computed with variable shifts), Q14 twiddles, preceded
// by a table-driven bit-reversal copy. Exercises variable-shift DSP code,
// three sequential/nested hardware loops, and data-independent bounds.
#include "kernels/kernels.hpp"
#include "kernels/kernels_impl.hpp"

#include <cmath>

namespace zolcsim::kernels {

namespace {

namespace b = isa::build;
using codegen::KernelBuilder;
using codegen::KNode;
using detail::check_words;
using detail::wadd;
using detail::wmul;

class Fft final : public Kernel {
 public:
  std::string_view name() const override { return "fft"; }
  std::string_view description() const override {
    return "radix-2 DIT FFT (bit-reverse + staged butterflies, Q14)";
  }

  static unsigned stages(const KernelEnv& env) { return 4 + (env.scale - 1); }
  static unsigned n(const KernelEnv& env) { return 1u << stages(env); }

  static std::int32_t tw_re(unsigned k, unsigned size) {
    return static_cast<std::int32_t>(
        std::lround(std::cos(2.0 * 3.14159265358979323846 * k / size) *
                    16384.0));
  }
  static std::int32_t tw_im(unsigned k, unsigned size) {
    return static_cast<std::int32_t>(
        std::lround(-std::sin(2.0 * 3.14159265358979323846 * k / size) *
                    16384.0));
  }

  std::vector<KNode> build(const KernelEnv& env) const override {
    const auto size = static_cast<std::int32_t>(n(env));
    const auto s = static_cast<std::int32_t>(stages(env));
    const std::int32_t im_ofs = size * 4;  // im plane offset in bytes

    KernelBuilder kb;
    kb.li(19, static_cast<std::int32_t>(env.in_base));   // input re/im
    kb.li(20, static_cast<std::int32_t>(env.aux_base));  // bit-rev table
    kb.li(9, static_cast<std::int32_t>(env.out_base));   // work/output
    kb.li(22, static_cast<std::int32_t>(env.aux_base + 0x800));  // twiddles
    kb.li(21, 1);

    // Bit-reverse gather: work[rev[i]] = in[i]. (r2 is reserved as the
    // butterfly loop's hardware-managed index register.)
    kb.for_count(1, 0, size, 1, [&] {
      kb.op(b::lw(3, 0, 20));        // j = rev[i]
      kb.op(b::addi(20, 20, 4));
      kb.op(b::lw(4, 0, 19));        // re
      kb.op(b::lw(5, im_ofs, 19));   // im
      kb.op(b::addi(19, 19, 4));
      kb.op(b::sll(6, 3, 2));
      kb.op(b::add(7, 9, 6));
      kb.op(b::sw(4, 0, 7));
      kb.op(b::sw(5, im_ofs, 7));
    });

    // Stages.
    kb.for_count(1, 0, s, 1, [&] {
      kb.op(b::sllv(16, 1, 21));     // half = 1 << stage
      kb.op(b::addi(17, 16, -1));    // mask = half - 1
      kb.op(b::addi(18, 0, s - 1));
      kb.op(b::sub(18, 18, 1));      // twiddle shift = S-1-stage
      kb.for_count(2, 0, size / 2, 1, [&] {
        kb.op(b::and_(3, 2, 17));    // j = i & mask
        kb.op(b::srlv(4, 1, 2));     // i >> stage
        kb.op(b::addi(5, 1, 1));
        kb.op(b::sllv(4, 5, 4));     // << (stage+1)
        kb.op(b::add(4, 4, 3));      // pos
        kb.op(b::add(5, 4, 16));     // pos + half
        kb.op(b::sll(6, 4, 2));
        kb.op(b::add(6, 6, 9));      // &work[pos]
        kb.op(b::sll(7, 5, 2));
        kb.op(b::add(7, 7, 9));      // &work[pos+half]
        kb.op(b::sllv(8, 18, 3));    // twiddle index = j << twshift
        kb.op(b::sll(8, 8, 2));
        kb.op(b::add(8, 8, 22));
        kb.op(b::lw(10, 0, 8));                    // w.re
        kb.op(b::lw(11, (size / 2) * 4, 8));       // w.im
        kb.op(b::lw(12, 0, 7));                    // b.re
        kb.op(b::lw(13, im_ofs, 7));               // b.im
        kb.op(b::mul(14, 10, 12));
        kb.op(b::mul(15, 11, 13));
        kb.op(b::sub(14, 14, 15));
        kb.op(b::sra(14, 14, 14));                 // t.re
        kb.op(b::mul(15, 10, 13));
        kb.op(b::mac(15, 11, 12));
        kb.op(b::sra(15, 15, 14));                 // t.im
        kb.op(b::lw(28, 0, 6));                    // a.re
        kb.op(b::lw(29, im_ofs, 6));               // a.im
        kb.op(b::sub(30, 28, 14));
        kb.op(b::sw(30, 0, 7));
        kb.op(b::sub(30, 29, 15));
        kb.op(b::sw(30, im_ofs, 7));
        kb.op(b::add(30, 28, 14));
        kb.op(b::sw(30, 0, 6));
        kb.op(b::add(30, 29, 15));
        kb.op(b::sw(30, im_ofs, 6));
      });
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 9);
    const unsigned size = n(env);
    // Two passes (re plane, then im plane) so the draw order matches the
    // golden reference's regeneration exactly.
    for (unsigned i = 0; i < size; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-4096, 4095)));
    }
    for (unsigned i = 0; i < size; ++i) {
      memory.write32(env.in_base + (size + i) * 4,
                     static_cast<std::uint32_t>(rng.range(-4096, 4095)));
    }
    const unsigned nbits = stages(env);
    for (unsigned i = 0; i < size; ++i) {
      unsigned rev = 0;
      for (unsigned bit = 0; bit < nbits; ++bit) {
        rev = (rev << 1) | ((i >> bit) & 1u);
      }
      memory.write32(env.aux_base + i * 4, rev);
    }
    for (unsigned k = 0; k < size / 2; ++k) {
      memory.write32(env.aux_base + 0x800 + k * 4,
                     static_cast<std::uint32_t>(tw_re(k, size)));
      memory.write32(env.aux_base + 0x800 + (size / 2 + k) * 4,
                     static_cast<std::uint32_t>(tw_im(k, size)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 9);
    const unsigned size = n(env);
    const unsigned nbits = stages(env);
    std::vector<std::int32_t> re(size), im(size);
    for (unsigned i = 0; i < size; ++i) re[i] = rng.range(-4096, 4095);
    for (unsigned i = 0; i < size; ++i) im[i] = rng.range(-4096, 4095);

    // Mirror the kernel's fixed-point arithmetic exactly.
    std::vector<std::int32_t> wre(size), wim(size);
    for (unsigned i = 0; i < size; ++i) {
      unsigned rev = 0;
      for (unsigned bit = 0; bit < nbits; ++bit) {
        rev = (rev << 1) | ((i >> bit) & 1u);
      }
      wre[rev] = re[i];
      wim[rev] = im[i];
    }
    for (unsigned stage = 0; stage < nbits; ++stage) {
      const unsigned half = 1u << stage;
      const unsigned mask = half - 1;
      const unsigned twshift = nbits - 1 - stage;
      for (unsigned i = 0; i < size / 2; ++i) {
        const unsigned j = i & mask;
        const unsigned pos = ((i >> stage) << (stage + 1)) + j;
        const unsigned hi = pos + half;
        const unsigned tw = j << twshift;
        const std::int32_t wr = tw_re(tw, size);
        const std::int32_t wi = tw_im(tw, size);
        const std::int32_t tre =
            (wadd(wmul(wr, wre[hi]), -wmul(wi, wim[hi]))) >> 14;
        const std::int32_t tim =
            (wadd(wmul(wr, wim[hi]), wmul(wi, wre[hi]))) >> 14;
        const std::int32_t are = wre[pos];
        const std::int32_t aim = wim[pos];
        wre[hi] = wadd(are, -tre);
        wim[hi] = wadd(aim, -tim);
        wre[pos] = wadd(are, tre);
        wim[pos] = wadd(aim, tim);
      }
    }
    std::vector<std::int32_t> expected;
    expected.reserve(2 * size);
    for (unsigned i = 0; i < size; ++i) expected.push_back(wre[i]);
    for (unsigned i = 0; i < size; ++i) expected.push_back(wim[i]);
    return check_words(memory, env.out_base, expected, "fft");
  }
};

}  // namespace

std::unique_ptr<Kernel> make_fft() { return std::make_unique<Fft>(); }

}  // namespace zolcsim::kernels
