// Matrix / image kernels: matmul, conv2d, sobel, dct8x8.
#include "kernels/kernels.hpp"
#include "kernels/kernels_impl.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

namespace zolcsim::kernels {

namespace {

namespace b = isa::build;
using codegen::KernelBuilder;
using codegen::KNode;
using detail::check_words;
using detail::wadd;
using detail::wmul;

// ---------------- matmul ----------------
// C = A x B (DxD), classic triple nest with a MAC inner loop.

class MatMul final : public Kernel {
 public:
  std::string_view name() const override { return "matmul"; }
  std::string_view description() const override {
    return "matrix multiply DxD (triple nest)";
  }

  static unsigned d(const KernelEnv& env) { return 8 * env.scale; }

  std::vector<KNode> build(const KernelEnv& env) const override {
    const auto dim = static_cast<std::int32_t>(d(env));
    KernelBuilder kb;
    kb.li(19, static_cast<std::int32_t>(env.in_base));
    kb.li(20, static_cast<std::int32_t>(env.in2_base));
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.li(22, dim * 4);  // row stride in bytes
    kb.for_count(1, 0, dim, 1, [&] {        // i
      kb.for_count(2, 0, dim, 1, [&] {      // j
        kb.op(b::addi(16, 0, 0));           // acc
        kb.op(b::mul(10, 1, 22));
        kb.op(b::add(10, 10, 19));          // pa = A + i*D*4
        kb.op(b::sll(11, 2, 2));
        kb.op(b::add(11, 11, 20));          // pb = B + j*4
        kb.for_count(3, 0, dim, 1, [&] {    // k
          kb.op(b::lw(4, 0, 10));
          kb.op(b::lw(5, 0, 11));
          kb.op(b::mac(16, 4, 5));
          kb.op(b::addi(10, 10, 4));
          kb.op(b::add(11, 11, 22));        // pb += D*4
        });
        kb.op(b::sw(16, 0, 9));
        kb.op(b::addi(9, 9, 4));
      });
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 5);
    const unsigned dim = d(env);
    for (unsigned i = 0; i < dim * dim; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-100, 100)));
      memory.write32(env.in2_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-100, 100)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 5);
    const unsigned dim = d(env);
    std::vector<std::int32_t> a(dim * dim), bm(dim * dim);
    for (unsigned i = 0; i < dim * dim; ++i) {
      a[i] = rng.range(-100, 100);
      bm[i] = rng.range(-100, 100);
    }
    std::vector<std::int32_t> c(dim * dim);
    for (unsigned i = 0; i < dim; ++i) {
      for (unsigned j = 0; j < dim; ++j) {
        std::int32_t acc = 0;
        for (unsigned k = 0; k < dim; ++k) {
          acc = wadd(acc, wmul(a[i * dim + k], bm[k * dim + j]));
        }
        c[i * dim + j] = acc;
      }
    }
    return check_words(memory, env.out_base, c, "matmul");
  }
};

// ---------------- conv2d ----------------
// 3x3 convolution over a WxW image; the full 4-deep nest.

class Conv2d final : public Kernel {
 public:
  std::string_view name() const override { return "conv2d"; }
  std::string_view description() const override {
    return "2-D convolution 3x3 (4-deep nest)";
  }

  static unsigned w(const KernelEnv& env) { return 12 * env.scale; }

  std::vector<KNode> build(const KernelEnv& env) const override {
    const auto width = static_cast<std::int32_t>(w(env));
    const std::int32_t out_dim = width - 2;
    KernelBuilder kb;
    kb.li(19, static_cast<std::int32_t>(env.in_base));
    kb.li(20, static_cast<std::int32_t>(env.in2_base));  // 3x3 kernel
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.li(22, width * 4);
    kb.for_count(1, 0, out_dim, 1, [&] {      // row
      kb.for_count(2, 0, out_dim, 1, [&] {    // col
        kb.op(b::addi(16, 0, 0));
        kb.op(b::mul(10, 1, 22));
        kb.op(b::add(10, 10, 19));
        kb.op(b::sll(11, 2, 2));
        kb.op(b::add(10, 10, 11));            // top-left input pixel
        kb.op(b::add(11, 20, 0));             // kernel pointer
        kb.for_count(3, 0, 3, 1, [&] {        // ky
          kb.op(b::mul(12, 3, 22));
          kb.op(b::add(12, 12, 10));          // row pointer
          kb.for_count(4, 0, 3, 1, [&] {      // kx
            kb.op(b::lw(5, 0, 12));
            kb.op(b::lw(6, 0, 11));
            kb.op(b::mac(16, 5, 6));
            kb.op(b::addi(12, 12, 4));
            kb.op(b::addi(11, 11, 4));
          });
        });
        kb.op(b::sra(16, 16, 4));
        kb.op(b::sw(16, 0, 9));
        kb.op(b::addi(9, 9, 4));
      });
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 6);
    const unsigned width = w(env);
    for (unsigned i = 0; i < width * width; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(0, 255)));
    }
    for (unsigned i = 0; i < 9; ++i) {
      memory.write32(env.in2_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-8, 8)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 6);
    const unsigned width = w(env);
    std::vector<std::int32_t> img(width * width);
    std::array<std::int32_t, 9> ker{};
    for (auto& v : img) v = rng.range(0, 255);
    for (auto& v : ker) v = rng.range(-8, 8);
    const unsigned out_dim = width - 2;
    std::vector<std::int32_t> out(out_dim * out_dim);
    for (unsigned r = 0; r < out_dim; ++r) {
      for (unsigned c = 0; c < out_dim; ++c) {
        std::int32_t acc = 0;
        for (unsigned ky = 0; ky < 3; ++ky) {
          for (unsigned kx = 0; kx < 3; ++kx) {
            acc = wadd(acc, wmul(img[(r + ky) * width + c + kx],
                                 ker[ky * 3 + kx]));
          }
        }
        out[r * out_dim + c] = acc >> 4;
      }
    }
    return check_words(memory, env.out_base, out, "conv2d");
  }
};

// ---------------- sobel ----------------
// |gx| + |gy| edge magnitude, 3x3 unrolled, clamped to 255.

class Sobel final : public Kernel {
 public:
  std::string_view name() const override { return "sobel"; }
  std::string_view description() const override {
    return "Sobel edge magnitude (unrolled 3x3, abs/min DSP ops)";
  }

  static unsigned w(const KernelEnv& env) { return 12 * env.scale; }

  std::vector<KNode> build(const KernelEnv& env) const override {
    const auto width = static_cast<std::int32_t>(w(env));
    const std::int32_t out_dim = width - 2;
    const std::int32_t s = width * 4;  // row stride
    KernelBuilder kb;
    kb.li(19, static_cast<std::int32_t>(env.in_base));
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.li(22, s);
    kb.li(23, 255);
    kb.for_count(1, 0, out_dim, 1, [&] {
      kb.for_count(2, 0, out_dim, 1, [&] {
        kb.op(b::mul(10, 1, 22));
        kb.op(b::add(10, 10, 19));
        kb.op(b::sll(11, 2, 2));
        kb.op(b::add(10, 10, 11));  // top-left
        // z1 z2 z3 / z4 _ z6 / z7 z8 z9
        kb.op(b::lw(3, 0, 10));          // z1
        kb.op(b::lw(4, 4, 10));          // z2
        kb.op(b::lw(5, 8, 10));          // z3
        kb.op(b::lw(6, s + 0, 10));      // z4
        kb.op(b::lw(12, s + 8, 10));     // z6
        kb.op(b::lw(13, 2 * s + 0, 10)); // z7
        kb.op(b::lw(14, 2 * s + 4, 10)); // z8
        kb.op(b::lw(15, 2 * s + 8, 10)); // z9
        // gx = (z3 + 2 z6 + z9) - (z1 + 2 z4 + z7)
        kb.op(b::sll(16, 12, 1));
        kb.op(b::add(16, 16, 5));
        kb.op(b::add(16, 16, 15));
        kb.op(b::sll(17, 6, 1));
        kb.op(b::add(17, 17, 3));
        kb.op(b::add(17, 17, 13));
        kb.op(b::sub(16, 16, 17));
        // gy = (z7 + 2 z8 + z9) - (z1 + 2 z2 + z3)
        kb.op(b::sll(18, 14, 1));
        kb.op(b::add(18, 18, 13));
        kb.op(b::add(18, 18, 15));
        kb.op(b::sll(17, 4, 1));
        kb.op(b::add(17, 17, 3));
        kb.op(b::add(17, 17, 5));
        kb.op(b::sub(18, 18, 17));
        kb.op(b::abs_(16, 16));
        kb.op(b::abs_(18, 18));
        kb.op(b::add(16, 16, 18));
        kb.op(b::min(16, 16, 23));  // clamp to 255
        kb.op(b::sw(16, 0, 9));
        kb.op(b::addi(9, 9, 4));
      });
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 7);
    const unsigned width = w(env);
    for (unsigned i = 0; i < width * width; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(0, 255)));
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 7);
    const unsigned width = w(env);
    std::vector<std::int32_t> img(width * width);
    for (auto& v : img) v = rng.range(0, 255);
    const unsigned out_dim = width - 2;
    std::vector<std::int32_t> out(out_dim * out_dim);
    const auto px = [&](unsigned r, unsigned c) { return img[r * width + c]; };
    for (unsigned r = 0; r < out_dim; ++r) {
      for (unsigned c = 0; c < out_dim; ++c) {
        const std::int32_t gx =
            (px(r, c + 2) + 2 * px(r + 1, c + 2) + px(r + 2, c + 2)) -
            (px(r, c) + 2 * px(r + 1, c) + px(r + 2, c));
        const std::int32_t gy =
            (px(r + 2, c) + 2 * px(r + 2, c + 1) + px(r + 2, c + 2)) -
            (px(r, c) + 2 * px(r, c + 1) + px(r, c + 2));
        out[r * out_dim + c] = std::min(std::abs(gx) + std::abs(gy), 255);
      }
    }
    return check_words(memory, env.out_base, out, "sobel");
  }
};

// ---------------- dct8x8 ----------------
// Naive 2-D 8x8 DCT as two sequential 3-deep nests (rows then columns),
// Q13 cosine table.

class Dct8x8 final : public Kernel {
 public:
  std::string_view name() const override { return "dct8x8"; }
  std::string_view description() const override {
    return "8x8 2-D DCT, row pass + column pass (Q13)";
  }

  static std::int32_t cos_q13(unsigned u, unsigned x) {
    const double c = std::cos((2.0 * x + 1.0) * u * 3.14159265358979323846 /
                              16.0);
    return static_cast<std::int32_t>(std::lround(c * 8192.0));
  }

  std::vector<KNode> build(const KernelEnv& env) const override {
    const auto tmp_base = static_cast<std::int32_t>(env.aux_base + 0x1000);
    KernelBuilder kb;
    kb.li(19, static_cast<std::int32_t>(env.in_base));
    kb.li(20, static_cast<std::int32_t>(env.aux_base));  // cos table (8x8)
    kb.li(21, tmp_base);
    kb.li(9, static_cast<std::int32_t>(env.out_base));
    kb.li(22, 32);  // 8 * 4 row stride

    // Pass 1: tmp[r][u] = sum_x in[r][x] * cos[u][x] >> 13
    kb.for_count(1, 0, 8, 1, [&] {        // r
      kb.for_count(2, 0, 8, 1, [&] {      // u
        kb.op(b::addi(16, 0, 0));
        kb.op(b::mul(10, 1, 22));
        kb.op(b::add(10, 10, 19));        // &in[r][0]
        kb.op(b::mul(11, 2, 22));
        kb.op(b::add(11, 11, 20));        // &cos[u][0]
        kb.for_count(3, 0, 8, 1, [&] {    // x
          kb.op(b::lw(4, 0, 10));
          kb.op(b::lw(5, 0, 11));
          kb.op(b::mac(16, 4, 5));
          kb.op(b::addi(10, 10, 4));
          kb.op(b::addi(11, 11, 4));
        });
        kb.op(b::sra(16, 16, 13));
        kb.op(b::mul(12, 1, 22));
        kb.op(b::sll(13, 2, 2));
        kb.op(b::add(12, 12, 13));
        kb.op(b::add(12, 12, 21));
        kb.op(b::sw(16, 0, 12));          // tmp[r][u]
      });
    });
    // Pass 2: out[u][v] = sum_r tmp[r][v] * cos[u][r] >> 13
    kb.for_count(1, 0, 8, 1, [&] {        // u
      kb.for_count(2, 0, 8, 1, [&] {      // v
        kb.op(b::addi(16, 0, 0));
        kb.op(b::sll(10, 2, 2));
        kb.op(b::add(10, 10, 21));        // &tmp[0][v]
        kb.op(b::mul(11, 1, 22));
        kb.op(b::add(11, 11, 20));        // &cos[u][0]
        kb.for_count(3, 0, 8, 1, [&] {    // r
          kb.op(b::lw(4, 0, 10));
          kb.op(b::lw(5, 0, 11));
          kb.op(b::mac(16, 4, 5));
          kb.op(b::add(10, 10, 22));
          kb.op(b::addi(11, 11, 4));
        });
        kb.op(b::sra(16, 16, 13));
        kb.op(b::sw(16, 0, 9));
        kb.op(b::addi(9, 9, 4));
      });
    });
    return kb.take();
  }

  void setup(const KernelEnv& env, mem::Memory& memory) const override {
    Lcg rng(env.seed + 8);
    for (unsigned i = 0; i < 64; ++i) {
      memory.write32(env.in_base + i * 4,
                     static_cast<std::uint32_t>(rng.range(-128, 127)));
    }
    for (unsigned u = 0; u < 8; ++u) {
      for (unsigned x = 0; x < 8; ++x) {
        memory.write32(env.aux_base + (u * 8 + x) * 4,
                       static_cast<std::uint32_t>(cos_q13(u, x)));
      }
    }
  }

  Result<void> verify(const KernelEnv& env,
                      const mem::Memory& memory) const override {
    Lcg rng(env.seed + 8);
    std::int32_t in[8][8];
    for (auto& row : in) {
      for (auto& v : row) v = rng.range(-128, 127);
    }
    std::int32_t tmp[8][8];
    for (unsigned r = 0; r < 8; ++r) {
      for (unsigned u = 0; u < 8; ++u) {
        std::int32_t acc = 0;
        for (unsigned x = 0; x < 8; ++x) {
          acc = wadd(acc, wmul(in[r][x], cos_q13(u, x)));
        }
        tmp[r][u] = acc >> 13;
      }
    }
    std::vector<std::int32_t> out(64);
    for (unsigned u = 0; u < 8; ++u) {
      for (unsigned v = 0; v < 8; ++v) {
        std::int32_t acc = 0;
        for (unsigned r = 0; r < 8; ++r) {
          acc = wadd(acc, wmul(tmp[r][v], cos_q13(u, r)));
        }
        out[u * 8 + v] = acc >> 13;
      }
    }
    return check_words(memory, env.out_base, out, "dct8x8");
  }
};

}  // namespace

std::unique_ptr<Kernel> make_matmul() { return std::make_unique<MatMul>(); }
std::unique_ptr<Kernel> make_conv2d() { return std::make_unique<Conv2d>(); }
std::unique_ptr<Kernel> make_sobel() { return std::make_unique<Sobel>(); }
std::unique_ptr<Kernel> make_dct8x8() { return std::make_unique<Dct8x8>(); }

}  // namespace zolcsim::kernels
