// Kernel IR (KIR): a small structured program representation for DSP
// kernels. Loops are counted `for` constructs with compile-time bounds (the
// form ZOLC accelerates); bodies are straight-line instructions plus
// structured conditionals and loop break-outs. One KIR kernel is lowered to
// machine code for every machine configuration the paper compares, so the
// *only* difference between configurations is loop-overhead handling.
#ifndef ZOLCSIM_CODEGEN_KIR_HPP
#define ZOLCSIM_CODEGEN_KIR_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <variant>
#include <vector>

#include "isa/build.hpp"
#include "isa/instruction.hpp"

namespace zolcsim::codegen {

struct KFor;
struct KIf;

/// A raw (non-control-flow) machine instruction.
struct KOp {
  isa::Instruction instr;
};

/// Break out of the innermost enclosing loop when cond(rs, rt) holds.
struct KBreakIf {
  isa::Opcode cond = isa::Opcode::kBne;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
};

using KNode = std::variant<KOp, KFor, KIf, KBreakIf>;

/// Counted loop: for (index = initial; ; index += step) with continuation
/// condition `index < final` (step > 0) or `index > final` (step < 0),
/// tested after each iteration (guaranteed >= 1 trip; validated statically).
struct KFor {
  std::uint8_t index_reg = 0;
  std::int32_t initial = 0;
  std::int32_t final = 0;
  std::int32_t step = 1;
  std::vector<KNode> body;
};

/// Structured conditional: body executes when cond(rs, rt) holds. May not
/// contain loops that should be hardware-managed (a conditional boundary
/// would be non-deterministic), which the lowering enforces by treating any
/// loop inside a KIf as software.
struct KIf {
  isa::Opcode cond = isa::Opcode::kBeq;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::vector<KNode> body;
};

/// Fluent builder with lambda-scoped nesting:
///   KernelBuilder kb;
///   kb.li(7, data_base);
///   kb.for_count(1, 0, n, 1, [&] { kb.op(b::lw(2, 0, 7)); ... });
class KernelBuilder {
 public:
  KernelBuilder();

  /// Appends a raw instruction to the current scope.
  void op(const isa::Instruction& instr);

  /// Materializes a 32-bit constant (1-2 instructions).
  void li(std::uint8_t reg, std::int32_t value);

  /// Opens a counted loop around `body`.
  void for_count(std::uint8_t index_reg, std::int32_t initial,
                 std::int32_t final, std::int32_t step,
                 const std::function<void()>& body);

  /// Opens a conditional around `body` (executes when cond holds).
  void if_cond(isa::Opcode cond, std::uint8_t rs, std::uint8_t rt,
               const std::function<void()>& body);

  /// Breaks the innermost enclosing loop when cond holds.
  void break_if(isa::Opcode cond, std::uint8_t rs, std::uint8_t rt);

  /// Finalizes and returns the kernel. The builder is left empty.
  [[nodiscard]] std::vector<KNode> take();

 private:
  std::vector<KNode> roots_;
  std::vector<std::vector<KNode>*> scope_;
};

// ---------------- analysis helpers ----------------

/// Number of iterations the loop executes (do-while semantics, >= 1 when
/// well-formed). Returns -1 for malformed loops (zero step, wrong direction,
/// or zero trips).
[[nodiscard]] std::int64_t trip_count(const KFor& loop) noexcept;

/// True iff any instruction in `nodes` (recursively) reads `reg`.
[[nodiscard]] bool body_reads_reg(std::span<const KNode> nodes,
                                  std::uint8_t reg);

/// True iff any instruction in `nodes` (recursively) writes `reg`.
[[nodiscard]] bool body_writes_reg(std::span<const KNode> nodes,
                                   std::uint8_t reg);

/// True iff `nodes` contains a KBreakIf not nested inside a deeper loop
/// (i.e. a break that exits the loop whose body this is).
[[nodiscard]] bool contains_direct_break(std::span<const KNode> nodes);

/// Total number of loops (recursively).
[[nodiscard]] unsigned count_loops(std::span<const KNode> nodes);

/// Maximum loop nesting depth.
[[nodiscard]] unsigned max_loop_depth(std::span<const KNode> nodes);

/// The branch opcode with the opposite condition (beq<->bne, blt<->bge, ...).
[[nodiscard]] isa::Opcode invert_branch(isa::Opcode op);

}  // namespace zolcsim::codegen

#endif  // ZOLCSIM_CODEGEN_KIR_HPP
