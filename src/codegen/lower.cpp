#include "codegen/lower.hpp"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "common/bitutil.hpp"
#include "common/contracts.hpp"
#include "zolc/tables.hpp"

namespace zolcsim::codegen {

namespace {

namespace b = isa::build;
using isa::Instruction;
using isa::Opcode;

// ---------------- emission with label fixups ----------------

class Emitter {
 public:
  [[nodiscard]] int pos() const { return static_cast<int>(code_.size()); }

  void emit(const Instruction& instr) { code_.push_back(instr); }

  void emit_li(std::uint8_t reg, std::int32_t value) {
    if (value >= -32768 && value <= 32767) {
      emit(b::addi(reg, 0, value));
      return;
    }
    const auto uv = static_cast<std::uint32_t>(value);
    emit(b::lui(reg, static_cast<std::int32_t>(uv >> 16)));
    if ((uv & 0xFFFFu) != 0) {
      emit(b::ori(reg, reg, static_cast<std::int32_t>(uv & 0xFFFFu)));
    }
  }

  [[nodiscard]] int new_label() {
    labels_.push_back(-1);
    return static_cast<int>(labels_.size()) - 1;
  }

  void bind(int label) {
    ZS_EXPECTS(label >= 0 && labels_[static_cast<unsigned>(label)] == -1);
    labels_[static_cast<unsigned>(label)] = pos();
  }

  /// Emits a conditional branch whose offset is patched to `label`.
  void emit_branch(Instruction branch, int label) {
    fixups_.push_back({pos(), label});
    emit(branch);
  }

  [[nodiscard]] Result<std::vector<Instruction>> finish() {
    for (const Fixup& f : fixups_) {
      const int target = labels_[static_cast<unsigned>(f.label)];
      ZS_ASSERT(target >= 0);
      const int ofs = target - (f.at + 1);
      if (!fits_signed(ofs, 16)) {
        return Error{ErrorCode::kCapacity, "branch offset out of range"};
      }
      code_[static_cast<unsigned>(f.at)].imm = ofs;
    }
    return std::move(code_);
  }

 private:
  struct Fixup {
    int at;
    int label;
  };
  std::vector<Instruction> code_;
  std::vector<int> labels_;
  std::vector<Fixup> fixups_;
};

// ---------------- validation ----------------

bool uses_reserved_reg(const Instruction& instr) {
  const auto in_pool = [](std::uint8_t r) { return r >= 24 && r <= 27; };
  const isa::SourceRegs srcs = isa::source_regs(instr);
  for (std::uint8_t i = 0; i < srcs.count; ++i) {
    if (in_pool(srcs.regs[i])) return true;
  }
  const auto dest = isa::dest_reg(instr);
  return dest.has_value() && in_pool(*dest);
}

Result<void> validate(std::span<const KNode> nodes, unsigned depth,
                      bool inside_loop) {
  const auto invalid = [](std::string msg) {
    return Error{ErrorCode::kInvalidKernel, std::move(msg)};
  };
  if (depth > kMaxLoweringDepth) {
    return invalid("loop nesting deeper than " +
                   std::to_string(kMaxLoweringDepth) + " is not supported");
  }
  for (const KNode& node : nodes) {
    if (const auto* kop = std::get_if<KOp>(&node)) {
      if (!kop->instr.valid()) return invalid("invalid instruction in kernel");
      const isa::OpcodeInfo& info = isa::opcode_info(kop->instr.op);
      if (info.is_cond_branch || info.is_jump || info.is_zolc ||
          kop->instr.op == Opcode::kHalt) {
        return invalid(
            "raw control-flow/zolc/halt instructions are not "
            "allowed in kernels; use structured constructs");
      }
      if (uses_reserved_reg(kop->instr)) {
        return invalid("kernel uses a reserved register (r24-r27)");
      }
    } else if (const auto* kfor = std::get_if<KFor>(&node)) {
      if (kfor->index_reg == 0 || kfor->index_reg >= isa::kNumRegs) {
        return invalid("loop index register out of range");
      }
      if (kfor->index_reg >= 24 && kfor->index_reg <= 27) {
        return invalid("loop index register collides with the reserved pool");
      }
      if (trip_count(*kfor) <= 0) {
        return invalid("loop has zero or negative trip count");
      }
      if (kfor->body.empty()) return invalid("empty loop body");
      if (body_writes_reg(kfor->body, kfor->index_reg)) {
        return invalid("loop body writes the loop index register");
      }
      if (auto r = validate(kfor->body, depth + 1, true); !r.ok()) return r;
    } else if (const auto* kif = std::get_if<KIf>(&node)) {
      if (kif->body.empty()) return invalid("empty if body");
      switch (kif->cond) {
        case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
        case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
        case Opcode::kBlez: case Opcode::kBgtz:
          break;
        default:
          return invalid("if condition must be a conditional branch opcode");
      }
      if (auto r = validate(kif->body, depth, inside_loop); !r.ok()) return r;
    } else if (std::holds_alternative<KBreakIf>(node)) {
      if (!inside_loop) return invalid("break outside of any loop");
    }
  }
  return {};
}

// ---------------- loop analysis for the ZOLC lowerings ----------------

struct LoopRec {
  const KFor* node = nullptr;
  int parent = -1;         ///< index of the innermost enclosing loop, or -1
  unsigned depth = 0;
  bool inside_if = false;
  bool direct_break = false;
  bool innermost = false;
  bool hw = false;
  int hw_id = -1;          ///< loop parameter table index
  // Filled during/after emission (body-relative instruction indices).
  int body_start = -1;
  int body_end = -1;
  int fb = -1;             ///< loop whose end is reached first from body start
  int after_boundary = -1; ///< boundary after completion (-1 = terminal)
  int body_task = -1;
  int after_task = -1;
};

void collect_loops(std::span<const KNode> nodes, int parent, unsigned depth,
                   bool inside_if, std::vector<LoopRec>& out) {
  for (const KNode& node : nodes) {
    if (const auto* kfor = std::get_if<KFor>(&node)) {
      LoopRec rec;
      rec.node = kfor;
      rec.parent = parent;
      rec.depth = depth;
      rec.inside_if = inside_if;
      rec.direct_break = contains_direct_break(kfor->body);
      rec.innermost = count_loops(kfor->body) == 0;
      const int my_index = static_cast<int>(out.size());
      out.push_back(rec);
      collect_loops(kfor->body, my_index, depth + 1, inside_if, out);
    } else if (const auto* kif = std::get_if<KIf>(&node)) {
      collect_loops(kif->body, parent, depth, /*inside_if=*/true, out);
    }
  }
}

bool bounds_fit_zolc_tables(const KFor& loop) {
  return fits_signed(loop.initial, 16) && fits_signed(loop.final, 16) &&
         fits_signed(loop.step, 8);
}

/// Marks hardware loops according to the machine's policy and the ZOLC
/// geometry. Returns notes about demotions.
std::vector<std::string> select_hw_loops(std::vector<LoopRec>& loops,
                                         MachineKind machine,
                                         std::span<const KNode> roots,
                                         const zolc::ZolcGeometry& geom) {
  std::vector<std::string> notes;
  const auto demote_reason = [&notes](const LoopRec& rec,
                                      const std::string& why) {
    notes.push_back("loop (index " +
                    std::string(isa::reg_name(rec.node->index_reg)) +
                    ") lowered to software: " + why);
  };
  // A hardware-managed index register is owned by the controller for the
  // whole region: any kernel instruction writing it would desynchronize the
  // RF copy from the controller's live index.
  const auto index_clobbered = [&roots](const LoopRec& rec) {
    return body_writes_reg(roots, rec.node->index_reg);
  };

  if (machine == MachineKind::kUZolc) {
    // Pick the deepest innermost break-free loop; uZOLC handles exactly one.
    int best = -1;
    for (unsigned i = 0; i < loops.size(); ++i) {
      const LoopRec& rec = loops[i];
      if (!rec.innermost || rec.direct_break || rec.inside_if ||
          index_clobbered(rec)) {
        continue;
      }
      if (best < 0 || rec.depth > loops[static_cast<unsigned>(best)].depth) {
        best = static_cast<int>(i);
      }
    }
    if (best >= 0) {
      loops[static_cast<unsigned>(best)].hw = true;
      loops[static_cast<unsigned>(best)].hw_id = 0;
    }
    for (const LoopRec& rec : loops) {
      if (!rec.hw) demote_reason(rec, "uZOLC manages a single loop");
    }
    return notes;
  }

  const bool full = machine == MachineKind::kZolcFull;
  // Top-down: a loop can be hardware only if its parent is (a hardware
  // boundary inside a software loop would never re-trigger).
  for (LoopRec& rec : loops) {
    const bool parent_hw = rec.parent < 0 ||
                           loops[static_cast<unsigned>(rec.parent)].hw;
    if (!parent_hw) {
      rec.hw = false;
      demote_reason(rec, "enclosing loop is software");
      continue;
    }
    if (rec.inside_if) {
      rec.hw = false;
      demote_reason(rec, "loop is under a conditional");
      continue;
    }
    if (rec.direct_break && (!full || geom.max_exits_per_loop == 0)) {
      rec.hw = false;
      demote_reason(rec, full ? "geometry has no candidate-exit records"
                              : "multi-exit loop needs ZOLCfull");
      continue;
    }
    if (!bounds_fit_zolc_tables(*rec.node)) {
      rec.hw = false;
      demote_reason(rec, "bounds exceed the loop parameter table widths");
      continue;
    }
    if (index_clobbered(rec)) {
      rec.hw = false;
      demote_reason(rec, "index register is written elsewhere in the kernel");
      continue;
    }
    rec.hw = true;
  }
  // Two hardware loops may share an index register only when their initial
  // values agree (reinit-on-exit leaves the register at `initial`, which is
  // what the next entry of the sharing loop relies on).
  for (unsigned i = 0; i < loops.size(); ++i) {
    if (!loops[i].hw) continue;
    for (unsigned j = 0; j < i; ++j) {
      if (!loops[j].hw) continue;
      if (loops[j].node->index_reg == loops[i].node->index_reg &&
          loops[j].node->initial != loops[i].node->initial) {
        loops[i].hw = false;
        demote_reason(loops[i],
                      "shares an index register with a loop of different "
                      "initial value");
        break;
      }
    }
  }
  // Closure of the nesting rule after late demotions: descendants of a
  // software loop must be software (pre-order makes one pass sufficient).
  for (LoopRec& rec : loops) {
    if (rec.hw && rec.parent >= 0 &&
        !loops[static_cast<unsigned>(rec.parent)].hw) {
      rec.hw = false;
      demote_reason(rec, "enclosing loop is software");
    }
  }
  // Capacity: at most geom.max_loops hardware loops; demote the deepest
  // first (children of a demoted loop must follow, which deepest-first
  // ordering guarantees).
  const auto hw_count = [&loops] {
    return static_cast<unsigned>(
        std::count_if(loops.begin(), loops.end(),
                      [](const LoopRec& r) { return r.hw; }));
  };
  while (hw_count() > geom.max_loops) {
    int deepest = -1;
    for (unsigned i = 0; i < loops.size(); ++i) {
      if (!loops[i].hw) continue;
      if (deepest < 0 ||
          loops[i].depth > loops[static_cast<unsigned>(deepest)].depth) {
        deepest = static_cast<int>(i);
      }
    }
    loops[static_cast<unsigned>(deepest)].hw = false;
    demote_reason(loops[static_cast<unsigned>(deepest)],
                  "loop parameter table capacity (" +
                      std::to_string(geom.max_loops) + ") exceeded");
  }
  int next_id = 0;
  for (LoopRec& rec : loops) {
    if (rec.hw) rec.hw_id = next_id++;
  }
  return notes;
}

// ---------------- software emission (shared) ----------------

struct LowerCtx {
  MachineKind machine = MachineKind::kXrDefault;
  zolc::ZolcGeometry geom;  ///< effective ZOLC geometry (zolc machines)
  /// Deep mode: the kernel nests deeper than the pool-register count, so
  /// software loops recycle pool slots with bound re-materialization.
  bool deep = false;
  std::vector<LoopRec>* loops = nullptr;  // null for pure-software lowering
  std::unordered_map<const KFor*, int> loop_index;
  struct PendingExit {
    int branch_pos;
    int exiting_loop;  // LoopRec index
    int scope_loop;    // LoopRec index whose record bank the exit uses
  };
  std::vector<PendingExit> exits;
  unsigned sw_loops_emitted = 0;
  unsigned hw_loops_emitted = 0;
};

[[nodiscard]] int rec_of(LowerCtx& ctx, const KFor* node) {
  const auto it = ctx.loop_index.find(node);
  ZS_ASSERT(it != ctx.loop_index.end());
  return it->second;
}

[[nodiscard]] bool is_hw(LowerCtx& ctx, const KFor* node) {
  if (ctx.loops == nullptr) return false;
  return (*ctx.loops)[static_cast<unsigned>(rec_of(ctx, node))].hw;
}

/// First boundary reached when executing the body of hardware loop `li`.
int first_boundary(LowerCtx& ctx, int li);

/// First boundary among `nodes` starting at element `from` (descending into
/// the fb chain of the first hardware loop found); -1 if none.
int first_boundary_of_rest(LowerCtx& ctx, std::span<const KNode> nodes,
                           std::size_t from) {
  for (std::size_t i = from; i < nodes.size(); ++i) {
    if (const auto* kfor = std::get_if<KFor>(&nodes[i])) {
      if (is_hw(ctx, kfor)) return first_boundary(ctx, rec_of(ctx, kfor));
    }
  }
  return -1;
}

int first_boundary(LowerCtx& ctx, int li) {
  const LoopRec& rec = (*ctx.loops)[static_cast<unsigned>(li)];
  const int inner = first_boundary_of_rest(ctx, rec.node->body, 0);
  return inner >= 0 ? inner : li;
}

struct EmitEnv {
  unsigned depth = 0;       ///< loop nesting depth (pool register index)
  int break_label = -1;     ///< innermost loop's exit label (sw break target)
  int innermost_loop = -1;  ///< LoopRec index of innermost enclosing loop
  int scope_loop = -1;      ///< hw loop whose boundary ends the current task
};

void emit_nodes(Emitter& e, LowerCtx& ctx, std::span<const KNode> nodes,
                EmitEnv env);

/// True iff some descendant of `nodes` lowers to a software loop whose
/// pool slot coincides with the slot of a loop `rel_depth` levels above
/// (every loop level, hardware or software, advances the depth; only
/// software loops touch pool registers).
bool sw_descendant_reuses_slot(LowerCtx& ctx, std::span<const KNode> nodes,
                               unsigned rel_depth) {
  constexpr auto kPoolSlots = static_cast<unsigned>(std::size(kPoolRegs));
  for (const KNode& node : nodes) {
    if (const auto* kfor = std::get_if<KFor>(&node)) {
      if (rel_depth % kPoolSlots == 0 && !is_hw(ctx, kfor)) return true;
      if (sw_descendant_reuses_slot(ctx, kfor->body, rel_depth + 1)) {
        return true;
      }
    } else if (const auto* kif = std::get_if<KIf>(&node)) {
      if (sw_descendant_reuses_slot(ctx, kif->body, rel_depth)) return true;
    }
  }
  return false;
}

void emit_sw_for(Emitter& e, LowerCtx& ctx, const KFor& loop, EmitEnv env) {
  ++ctx.sw_loops_emitted;
  constexpr auto kPoolSlots = static_cast<unsigned>(std::size(kPoolRegs));
  // Deep mode recycles pool slots modulo the pool size. A loop whose slot
  // is reused by a software descendant (4, 8, ... levels deeper)
  // re-materializes its (constant) bound in the latch, making the clobber
  // harmless; slots with no such descendant keep the plain form. dbne
  // down-counters are live state and cannot be re-materialized, so deep
  // nests always use the compare-and-branch form.
  const std::uint8_t pool =
      kPoolRegs[ctx.deep ? env.depth % kPoolSlots : env.depth];
  const bool remat_bound =
      ctx.deep && sw_descendant_reuses_slot(ctx, loop.body, 1);
  const bool hrdwil = ctx.machine == MachineKind::kXrHrdwil && !ctx.deep;
  const bool maintain_index = !hrdwil || body_reads_reg(loop.body,
                                                        loop.index_reg);
  if (maintain_index) e.emit_li(loop.index_reg, loop.initial);
  if (hrdwil) {
    e.emit_li(pool, static_cast<std::int32_t>(trip_count(loop)));
  } else {
    e.emit_li(pool, loop.final);
  }
  const int head = e.new_label();
  const int brk = e.new_label();
  e.bind(head);

  EmitEnv inner = env;
  inner.depth = env.depth + 1;
  inner.break_label = brk;
  inner.innermost_loop =
      ctx.loops != nullptr && ctx.loop_index.count(&loop) != 0
          ? rec_of(ctx, &loop)
          : -1;
  emit_nodes(e, ctx, loop.body, inner);

  if (hrdwil) {
    if (maintain_index) {
      e.emit(b::addi(loop.index_reg, loop.index_reg, loop.step));
    }
    e.emit_branch(b::dbne(pool, 0), head);
  } else {
    // The re-materialization goes ahead of the update so the update/branch
    // pair stays adjacent (the idiom zolcscan recognizes in compiled
    // binaries).
    if (remat_bound) e.emit_li(pool, loop.final);
    e.emit(b::addi(loop.index_reg, loop.index_reg, loop.step));
    if (loop.step > 0) {
      e.emit_branch(b::blt(loop.index_reg, pool, 0), head);
    } else {
      e.emit_branch(b::blt(pool, loop.index_reg, 0), head);
    }
  }
  e.bind(brk);
}

void emit_hw_for(Emitter& e, LowerCtx& ctx, const KFor& loop, EmitEnv env) {
  ++ctx.hw_loops_emitted;
  const int li = rec_of(ctx, &loop);
  LoopRec& rec = (*ctx.loops)[static_cast<unsigned>(li)];
  rec.body_start = e.pos();

  const int after = e.new_label();  // break target: right after the body

  EmitEnv inner = env;
  inner.depth = env.depth + 1;
  inner.break_label = after;
  inner.innermost_loop = li;
  inner.scope_loop = li;  // refined per-node inside emit_nodes
  emit_nodes(e, ctx, loop.body, inner);

  // A trailing conditional, or a trailing loop with break-outs (software or
  // hardware), can transfer control past the last body instruction and skip
  // this loop's task-end fetch; a terminating nop keeps the boundary (and
  // gives hardware break-outs a landing strip inside this loop's region).
  if (!loop.body.empty()) {
    const KNode& last = loop.body.back();
    const bool trailing_if = std::holds_alternative<KIf>(last);
    const auto* trailing_for = std::get_if<KFor>(&last);
    const bool trailing_breaky_for =
        trailing_for != nullptr && contains_direct_break(trailing_for->body);
    if (trailing_if || trailing_breaky_for) e.emit(b::nop());
  }
  ZS_ASSERT(e.pos() > rec.body_start);
  rec.body_end = e.pos() - 1;
  e.bind(after);
}

void emit_nodes(Emitter& e, LowerCtx& ctx, std::span<const KNode> nodes,
                EmitEnv env) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const KNode& node = nodes[i];
    // The task containing this point ends at the first hardware boundary
    // ahead: either inside a following hardware sibling, or the enclosing
    // scope's own end.
    EmitEnv here = env;
    if (ctx.loops != nullptr) {
      const int ahead = first_boundary_of_rest(ctx, nodes, i + 1);
      if (ahead >= 0) here.scope_loop = ahead;
    }

    if (const auto* kop = std::get_if<KOp>(&node)) {
      e.emit(kop->instr);
    } else if (const auto* kfor = std::get_if<KFor>(&node)) {
      if (is_hw(ctx, kfor)) {
        emit_hw_for(e, ctx, *kfor, here);
      } else {
        emit_sw_for(e, ctx, *kfor, here);
      }
    } else if (const auto* kif = std::get_if<KIf>(&node)) {
      const int skip = e.new_label();
      Instruction branch = b::branch(invert_branch(kif->cond), kif->rs,
                                     kif->rt, 0);
      e.emit_branch(branch, skip);
      emit_nodes(e, ctx, kif->body, here);
      e.bind(skip);
    } else if (const auto* kbr = std::get_if<KBreakIf>(&node)) {
      const int branch_pos = e.pos();
      e.emit_branch(b::branch(kbr->cond, kbr->rs, kbr->rt, 0),
                    env.break_label);
      // Hardware-managed loop break: register a candidate-exit record,
      // banked on the loop the controller is scoped to at this point.
      if (ctx.loops != nullptr && env.innermost_loop >= 0 &&
          (*ctx.loops)[static_cast<unsigned>(env.innermost_loop)].hw) {
        ZS_ASSERT(here.scope_loop >= 0);
        ctx.exits.push_back(
            LowerCtx::PendingExit{branch_pos, env.innermost_loop,
                                  here.scope_loop});
      }
    }
  }
}

// ---------------- ZOLC task construction ----------------

struct TaskPlan {
  int start = 0;     ///< body-relative landing index
  int boundary = 0;  ///< LoopRec index of the loop ending this task
};

struct ZolcPlan {
  std::vector<TaskPlan> tasks;  ///< task id -> plan (id 0 = entry task)
  /// index = bank * geom.max_exits_per_loop + slot
  std::vector<zolc::ExitRecord> exit_records;
  unsigned exit_count = 0;
};

Result<ZolcPlan> build_task_plan(LowerCtx& ctx, std::span<const KNode> roots) {
  std::vector<LoopRec>& loops = *ctx.loops;
  ZolcPlan plan;

  // after_boundary: the boundary reached after a loop completes.
  std::vector<std::vector<int>> children_after(loops.size());
  const std::function<void(std::span<const KNode>, int)> scan =
      [&](std::span<const KNode> nodes, int parent) {
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (const auto* kfor = std::get_if<KFor>(&nodes[i])) {
            const int li = rec_of(ctx, kfor);
            if (loops[static_cast<unsigned>(li)].hw) {
              const int ahead = first_boundary_of_rest(ctx, nodes, i + 1);
              loops[static_cast<unsigned>(li)].after_boundary =
                  ahead >= 0 ? ahead : parent;
              scan(kfor->body, li);
            } else {
              scan(kfor->body, parent);  // sw loop: no hw inside by policy
            }
          } else if (const auto* kif = std::get_if<KIf>(&nodes[i])) {
            scan(kif->body, parent);
          }
        }
      };
  scan(roots, -1);

  for (LoopRec& rec : loops) {
    if (rec.hw) rec.fb = first_boundary(ctx, static_cast<int>(
                                                 &rec - loops.data()));
  }

  // Task 0: entry landing at body offset 0.
  const int entry_boundary = first_boundary_of_rest(ctx, roots, 0);
  ZS_ASSERT(entry_boundary >= 0);
  plan.tasks.push_back(TaskPlan{0, entry_boundary});

  for (unsigned i = 0; i < loops.size(); ++i) {
    LoopRec& rec = loops[i];
    if (!rec.hw) continue;
    rec.body_task = static_cast<int>(plan.tasks.size());
    plan.tasks.push_back(TaskPlan{rec.body_start, rec.fb});
    if (rec.after_boundary >= 0) {
      rec.after_task = static_cast<int>(plan.tasks.size());
      plan.tasks.push_back(TaskPlan{rec.body_end + 1, rec.after_boundary});
    }
  }
  if (plan.tasks.size() > ctx.geom.max_tasks) {
    return Error{ErrorCode::kCapacity, "task selection LUT capacity (" +
                 std::to_string(ctx.geom.max_tasks) + ") exceeded"};
  }

  // Candidate-exit records (ZOLCfull).
  plan.exit_records.assign(ctx.geom.exit_record_count(), zolc::ExitRecord{});
  std::vector<unsigned> used(ctx.geom.max_loops, 0);
  for (const LowerCtx::PendingExit& pe : ctx.exits) {
    const LoopRec& exiting = loops[static_cast<unsigned>(pe.exiting_loop)];
    const LoopRec& scope = loops[static_cast<unsigned>(pe.scope_loop)];
    ZS_ASSERT(exiting.hw && scope.hw);
    const auto bank = static_cast<unsigned>(scope.hw_id);
    if (used[bank] >= ctx.geom.max_exits_per_loop) {
      return Error{ErrorCode::kCapacity, "more than " +
                   std::to_string(ctx.geom.max_exits_per_loop) +
                   " candidate exits for one loop (exit record capacity)"};
    }
    zolc::ExitRecord rec;
    rec.branch_pc_ofs = 0;  // patched later (needs init length)
    rec.next_task = exiting.after_task >= 0
                        ? static_cast<std::uint8_t>(exiting.after_task)
                        : 0;
    rec.deactivate = exiting.after_boundary < 0;
    rec.reinit_mask = 1u << exiting.hw_id;
    rec.valid = true;
    plan.exit_records[bank * ctx.geom.max_exits_per_loop + used[bank]] = rec;
    // Remember which pending exit this record belongs to via exit_count
    // ordering: records are patched in the same order below.
    ++used[bank];
    ++plan.exit_count;
  }
  return plan;
}

// ---------------- init sequence ----------------

void emit_table_write(Emitter& e, Opcode op, std::uint8_t idx,
                      std::uint32_t payload) {
  // Fixed-length materialization keeps the init length independent of the
  // payload values (needed because payloads contain offsets that depend on
  // the init length itself).
  e.emit(b::lui(kInitScratchReg, static_cast<std::int32_t>(payload >> 16)));
  e.emit(b::ori(kInitScratchReg, kInitScratchReg,
                static_cast<std::int32_t>(payload & 0xFFFFu)));
  e.emit(b::zolc_write(op, idx, kInitScratchReg));
}

}  // namespace

Result<Program> lower(std::span<const KNode> kernel, MachineKind machine,
                      std::uint32_t base, const zolc::ZolcGeometry& geometry) {
  if (auto v = validate(kernel, 0, false); !v.ok()) return v.error();
  if (!geometry.valid()) {
    return Error{ErrorCode::kBadConfig, "invalid ZOLC geometry"};
  }

  Program prog;
  prog.base = base;
  prog.machine = machine;

  LowerCtx ctx;
  ctx.machine = machine;
  ctx.deep = max_loop_depth(kernel) >
             static_cast<unsigned>(std::size(kPoolRegs));

  std::vector<LoopRec> loops;
  const bool zolc_machine = machine_zolc_variant(machine).has_value();
  if (zolc_machine) {
    ctx.geom = geometry.for_variant(*machine_zolc_variant(machine));
    collect_loops(kernel, -1, 0, false, loops);
    prog.notes = select_hw_loops(loops, machine, kernel, ctx.geom);
    ctx.loops = &loops;
    for (unsigned i = 0; i < loops.size(); ++i) {
      ctx.loop_index.emplace(loops[i].node, static_cast<int>(i));
    }
  }

  // Emit the kernel body (positions relative to the body start).
  Emitter body_emitter;
  emit_nodes(body_emitter, ctx, kernel, EmitEnv{});
  body_emitter.emit(b::halt());
  auto body = body_emitter.finish();
  if (!body.ok()) return body.error();

  prog.hw_loop_count = ctx.hw_loops_emitted;
  prog.sw_loop_count = ctx.sw_loops_emitted;

  if (!zolc_machine || ctx.hw_loops_emitted == 0) {
    if (zolc_machine) {
      prog.notes.push_back("no hardware-eligible loops; pure software");
    }
    prog.code = std::move(body).value();
    return prog;
  }

  Emitter init;
  const auto variant = *machine_zolc_variant(machine);

  if (variant == zolc::ZolcVariant::kMicro) {
    // One loop; find it.
    const LoopRec* hw = nullptr;
    for (const LoopRec& rec : loops) {
      if (rec.hw) hw = &rec;
    }
    ZS_ASSERT(hw != nullptr);
    // init = 6 writes x3 + fixed 2-instruction index li (uZOLC bounds are
    // full 32-bit) + base li32 + zolon (+ pad).
    unsigned init_len = 6 * 3 + 2 + 2 + 1;
    const unsigned pad =
        static_cast<unsigned>(std::max(0, 2 - hw->body_end));
    init_len += pad;

    const std::uint32_t start_pc =
        base + (init_len + static_cast<unsigned>(hw->body_start)) * 4;
    const std::uint32_t end_pc =
        base + (init_len + static_cast<unsigned>(hw->body_end)) * 4;
    using MR = zolc::MicroReg;
    emit_table_write(init, Opcode::kZolwU, static_cast<std::uint8_t>(MR::kInitial),
                     static_cast<std::uint32_t>(hw->node->initial));
    emit_table_write(init, Opcode::kZolwU, static_cast<std::uint8_t>(MR::kFinal),
                     static_cast<std::uint32_t>(hw->node->final));
    emit_table_write(init, Opcode::kZolwU, static_cast<std::uint8_t>(MR::kStep),
                     static_cast<std::uint32_t>(hw->node->step));
    emit_table_write(init, Opcode::kZolwU, static_cast<std::uint8_t>(MR::kStartPc),
                     start_pc);
    emit_table_write(init, Opcode::kZolwU, static_cast<std::uint8_t>(MR::kEndPc),
                     end_pc);
    emit_table_write(init, Opcode::kZolwU, static_cast<std::uint8_t>(MR::kCtrl),
                     zolc::pack_micro_ctrl(hw->node->index_reg,
                                           hw->node->step > 0
                                               ? zolc::LoopCond::kLt
                                               : zolc::LoopCond::kGt));
    const auto uinit = static_cast<std::uint32_t>(hw->node->initial);
    init.emit(b::lui(hw->node->index_reg,
                     static_cast<std::int32_t>(uinit >> 16)));
    init.emit(b::ori(hw->node->index_reg, hw->node->index_reg,
                     static_cast<std::int32_t>(uinit & 0xFFFFu)));
    init.emit(b::lui(kInitBaseReg, static_cast<std::int32_t>(base >> 16)));
    init.emit(b::ori(kInitBaseReg, kInitBaseReg,
                     static_cast<std::int32_t>(base & 0xFFFFu)));
    init.emit(b::zolon(0, kInitBaseReg));
    for (unsigned i = 0; i < pad; ++i) init.emit(b::nop());
    ZS_ASSERT(static_cast<unsigned>(init.pos()) == init_len);
    prog.init_instructions = init_len;

    auto init_code = init.finish();
    ZS_ASSERT(init_code.ok());
    prog.code = std::move(init_code).value();
    auto body_code = std::move(body).value();
    prog.code.insert(prog.code.end(), body_code.begin(), body_code.end());
    return prog;
  }

  // ZOLClite / ZOLCfull: build the task plan, then the init sequence.
  auto plan_result = build_task_plan(ctx, kernel);
  if (!plan_result.ok()) return plan_result.error();
  ZolcPlan& plan = plan_result.value();

  const unsigned hw_count = ctx.hw_loops_emitted;
  const auto task_count = static_cast<unsigned>(plan.tasks.size());
  const unsigned exit_count = plan.exit_count;
  // Each table write is 3 instructions; wide geometries need a second init
  // word (zolw.ex1) per exit record.
  const unsigned exit_words = ctx.geom.record_words();
  unsigned init_len =
      3 * (2 * hw_count + 2 * task_count + exit_words * exit_count) +
      hw_count + 2 + 1;
  const int first_end =
      loops[static_cast<unsigned>(plan.tasks[0].boundary)].body_end;
  const unsigned pad = static_cast<unsigned>(std::max(0, 2 - first_end));
  init_len += pad;

  // Every table PC field is a word offset of pc_ofs_bits; a program whose
  // init + body outgrows the window would silently alias offsets (pack
  // masks them), so reject it here with a diagnosable error instead.
  if (init_len + body.value().size() - 1 > mask32(ctx.geom.pc_ofs_bits)) {
    return Error{ErrorCode::kCapacity,
                 "program exceeds the geometry's PC-offset window (" +
                     std::to_string(ctx.geom.pc_ofs_bits) + " bits)"};
  }

  const auto rel_to_ofs = [init_len](int rel) {
    return static_cast<std::uint16_t>(init_len + static_cast<unsigned>(rel));
  };

  // Loop parameter tables.
  for (const LoopRec& rec : loops) {
    if (!rec.hw) continue;
    zolc::LoopEntry entry;
    entry.initial = static_cast<std::int16_t>(rec.node->initial);
    entry.final = static_cast<std::int16_t>(rec.node->final);
    entry.step = static_cast<std::int8_t>(rec.node->step);
    entry.index_rf = rec.node->index_reg;
    entry.cond = rec.node->step > 0 ? zolc::LoopCond::kLt
                                    : zolc::LoopCond::kGt;
    entry.valid = true;
    emit_table_write(init, Opcode::kZolwLp0,
                     static_cast<std::uint8_t>(rec.hw_id),
                     entry.pack_word0());
    emit_table_write(init, Opcode::kZolwLp1,
                     static_cast<std::uint8_t>(rec.hw_id),
                     entry.pack_word1());
  }
  // Task selection LUT + task-start table.
  for (unsigned t = 0; t < task_count; ++t) {
    const TaskPlan& tp = plan.tasks[t];
    const LoopRec& boundary = loops[static_cast<unsigned>(tp.boundary)];
    zolc::TaskEntry te;
    te.end_pc_ofs = rel_to_ofs(boundary.body_end);
    te.loop_id = static_cast<std::uint8_t>(boundary.hw_id);
    te.next_task_cont = static_cast<std::uint8_t>(boundary.body_task);
    te.next_task_done = boundary.after_task >= 0
                            ? static_cast<std::uint8_t>(boundary.after_task)
                            : 0;
    te.is_last = boundary.after_boundary < 0;
    te.valid = true;
    emit_table_write(init, Opcode::kZolwTe, static_cast<std::uint8_t>(t),
                     te.pack(ctx.geom));
    emit_table_write(init, Opcode::kZolwTs, static_cast<std::uint8_t>(t),
                     rel_to_ofs(tp.start));
  }
  // Candidate-exit records, patched with absolute offsets.
  {
    std::vector<unsigned> used(ctx.geom.max_loops, 0);
    for (const LowerCtx::PendingExit& pe : ctx.exits) {
      const LoopRec& scope = loops[static_cast<unsigned>(pe.scope_loop)];
      const auto bank = static_cast<unsigned>(scope.hw_id);
      const unsigned slot = used[bank]++;
      const unsigned idx = bank * ctx.geom.max_exits_per_loop + slot;
      zolc::ExitRecord rec = plan.exit_records[idx];
      rec.branch_pc_ofs = rel_to_ofs(pe.branch_pos);
      emit_table_write(init, Opcode::kZolwEx0,
                       static_cast<std::uint8_t>(idx), rec.pack_lo(ctx.geom));
      if (exit_words > 1) {
        emit_table_write(init, Opcode::kZolwEx1,
                         static_cast<std::uint8_t>(idx),
                         rec.pack_hi(ctx.geom));
      }
    }
  }
  // Index registers get their first-iteration values in software.
  for (const LoopRec& rec : loops) {
    if (!rec.hw) continue;
    init.emit(b::addi(rec.node->index_reg, 0,
                      static_cast<std::int32_t>(rec.node->initial)));
  }
  init.emit(b::lui(kInitBaseReg, static_cast<std::int32_t>(base >> 16)));
  init.emit(b::ori(kInitBaseReg, kInitBaseReg,
                   static_cast<std::int32_t>(base & 0xFFFFu)));
  init.emit(b::zolon(0, kInitBaseReg));  // task 0 = entry task
  for (unsigned i = 0; i < pad; ++i) init.emit(b::nop());
  ZS_ASSERT(static_cast<unsigned>(init.pos()) == init_len);
  prog.init_instructions = init_len;

  auto init_code = init.finish();
  ZS_ASSERT(init_code.ok());
  prog.code = std::move(init_code).value();
  auto body_code = std::move(body).value();
  prog.code.insert(prog.code.end(), body_code.begin(), body_code.end());
  return prog;
}

}  // namespace zolcsim::codegen
