#include "codegen/kir.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace zolcsim::codegen {

KernelBuilder::KernelBuilder() { scope_.push_back(&roots_); }

void KernelBuilder::op(const isa::Instruction& instr) {
  ZS_EXPECTS(instr.valid());
  scope_.back()->push_back(KOp{instr});
}

void KernelBuilder::li(std::uint8_t reg, std::int32_t value) {
  namespace b = isa::build;
  if (value >= -32768 && value <= 32767) {
    op(b::addi(reg, 0, value));
    return;
  }
  const auto uv = static_cast<std::uint32_t>(value);
  op(b::lui(reg, static_cast<std::int32_t>(uv >> 16)));
  if ((uv & 0xFFFFu) != 0) {
    op(b::ori(reg, reg, static_cast<std::int32_t>(uv & 0xFFFFu)));
  }
}

void KernelBuilder::for_count(std::uint8_t index_reg, std::int32_t initial,
                              std::int32_t final, std::int32_t step,
                              const std::function<void()>& body) {
  KFor loop;
  loop.index_reg = index_reg;
  loop.initial = initial;
  loop.final = final;
  loop.step = step;
  scope_.back()->push_back(std::move(loop));
  auto& slot = std::get<KFor>(scope_.back()->back());
  scope_.push_back(&slot.body);
  body();
  scope_.pop_back();
}

void KernelBuilder::if_cond(isa::Opcode cond, std::uint8_t rs, std::uint8_t rt,
                            const std::function<void()>& body) {
  KIf node;
  node.cond = cond;
  node.rs = rs;
  node.rt = rt;
  scope_.back()->push_back(std::move(node));
  auto& slot = std::get<KIf>(scope_.back()->back());
  scope_.push_back(&slot.body);
  body();
  scope_.pop_back();
}

void KernelBuilder::break_if(isa::Opcode cond, std::uint8_t rs,
                             std::uint8_t rt) {
  scope_.back()->push_back(KBreakIf{cond, rs, rt});
}

std::vector<KNode> KernelBuilder::take() {
  ZS_EXPECTS(scope_.size() == 1);  // all nested scopes closed
  std::vector<KNode> out = std::move(roots_);
  roots_.clear();
  return out;
}

std::int64_t trip_count(const KFor& loop) noexcept {
  if (loop.step == 0) return -1;
  const std::int64_t span = static_cast<std::int64_t>(loop.final) -
                            static_cast<std::int64_t>(loop.initial);
  if (loop.step > 0) {
    if (span <= 0) return -1;
    return (span + loop.step - 1) / loop.step;
  }
  if (span >= 0) return -1;
  return (-span + (-loop.step) - 1) / (-loop.step);
}

namespace {

template <typename Pred>
bool any_instruction(std::span<const KNode> nodes, const Pred& pred) {
  for (const KNode& node : nodes) {
    if (const auto* kop = std::get_if<KOp>(&node)) {
      if (pred(kop->instr)) return true;
    } else if (const auto* kfor = std::get_if<KFor>(&node)) {
      if (any_instruction(std::span<const KNode>(kfor->body), pred)) {
        return true;
      }
    } else if (const auto* kif = std::get_if<KIf>(&node)) {
      if (any_instruction(std::span<const KNode>(kif->body), pred)) {
        return true;
      }
    }
  }
  return false;
}

bool direct_break_scan(std::span<const KNode> nodes) {
  for (const KNode& node : nodes) {
    if (std::holds_alternative<KBreakIf>(node)) return true;
    if (const auto* kif = std::get_if<KIf>(&node)) {
      // Breaks inside a conditional still exit the same loop.
      if (direct_break_scan(kif->body)) return true;
    }
    // KFor starts a deeper loop: its breaks belong to it.
  }
  return false;
}

}  // namespace

bool body_reads_reg(std::span<const KNode> nodes, std::uint8_t reg) {
  const bool in_ops = any_instruction(nodes, [reg](const isa::Instruction& i) {
    const isa::SourceRegs srcs = isa::source_regs(i);
    for (std::uint8_t k = 0; k < srcs.count; ++k) {
      if (srcs.regs[k] == reg) return true;
    }
    return false;
  });
  if (in_ops) return true;
  // Conditions of ifs/breaks read registers too.
  for (const KNode& node : nodes) {
    if (const auto* kif = std::get_if<KIf>(&node)) {
      if (kif->rs == reg || kif->rt == reg) return true;
      if (body_reads_reg(kif->body, reg)) return true;
    } else if (const auto* kbr = std::get_if<KBreakIf>(&node)) {
      if (kbr->rs == reg || kbr->rt == reg) return true;
    } else if (const auto* kfor = std::get_if<KFor>(&node)) {
      if (body_reads_reg(kfor->body, reg)) return true;
    }
  }
  return false;
}

bool body_writes_reg(std::span<const KNode> nodes, std::uint8_t reg) {
  if (reg == 0) return false;
  return any_instruction(nodes, [reg](const isa::Instruction& i) {
    const auto dest = isa::dest_reg(i);
    return dest.has_value() && *dest == reg;
  });
}

bool contains_direct_break(std::span<const KNode> nodes) {
  return direct_break_scan(nodes);
}

unsigned count_loops(std::span<const KNode> nodes) {
  unsigned n = 0;
  for (const KNode& node : nodes) {
    if (const auto* kfor = std::get_if<KFor>(&node)) {
      n += 1 + count_loops(kfor->body);
    } else if (const auto* kif = std::get_if<KIf>(&node)) {
      n += count_loops(kif->body);
    }
  }
  return n;
}

unsigned max_loop_depth(std::span<const KNode> nodes) {
  unsigned depth = 0;
  for (const KNode& node : nodes) {
    if (const auto* kfor = std::get_if<KFor>(&node)) {
      depth = std::max(depth, 1 + max_loop_depth(kfor->body));
    } else if (const auto* kif = std::get_if<KIf>(&node)) {
      depth = std::max(depth, max_loop_depth(kif->body));
    }
  }
  return depth;
}

isa::Opcode invert_branch(isa::Opcode op) {
  using O = isa::Opcode;
  switch (op) {
    case O::kBeq:  return O::kBne;
    case O::kBne:  return O::kBeq;
    case O::kBlt:  return O::kBge;
    case O::kBge:  return O::kBlt;
    case O::kBltu: return O::kBgeu;
    case O::kBgeu: return O::kBltu;
    case O::kBlez: return O::kBgtz;
    case O::kBgtz: return O::kBlez;
    default:
      ZS_UNREACHABLE("invert_branch: not an invertible conditional branch");
  }
}

}  // namespace zolcsim::codegen
