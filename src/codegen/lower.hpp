// Lowering: KIR kernel -> runnable machine program for each machine
// configuration. The three strategies differ only in loop-overhead handling:
//
//   XRdefault  -- software loops: index init + per-iteration index update,
//                 bound compare-and-branch, taken-branch flush.
//   XRhrdwil   -- counted loops collapse the update/compare/branch pattern
//                 into one `dbne` on a dedicated down-counter (the index is
//                 maintained only if the body reads it).
//   uZOLC      -- the single hottest innermost loop is hardware-managed;
//                 everything else is software. The controller stays armed,
//                 so software outer loops re-enter it for free.
//   ZOLClite   -- every eligible loop is hardware-managed via the task
//                 LUT; loops with data-dependent break-outs (and loops under
//                 conditionals, plus their descendants) fall back to
//                 software.
//   ZOLCfull   -- like lite, and break-outs become candidate-exit records,
//                 so multi-exit loops are hardware-managed too.
//
// The ZOLC lowerings emit the initialization instruction sequence (zolw.*,
// zolon) ahead of the kernel body -- the paper's "initialization mode",
// executed once outside the loop nest. Every ZOLC capacity decision (loop
// parameter table size, task LUT size, exit records per loop) is driven by
// the ZolcGeometry argument, so the same kernel lowers against any
// controller configuration.
#ifndef ZOLCSIM_CODEGEN_LOWER_HPP
#define ZOLCSIM_CODEGEN_LOWER_HPP

#include <span>

#include "codegen/kir.hpp"
#include "codegen/program.hpp"
#include "common/result.hpp"
#include "zolc/config.hpp"

namespace zolcsim::codegen {

/// Registers reserved for the lowering (software loop bounds / down-counters
/// by nesting depth, and ZOLC init scratch). Kernels must not use them.
inline constexpr std::uint8_t kPoolRegs[4] = {24, 25, 26, 27};
inline constexpr std::uint8_t kInitScratchReg = 24;
inline constexpr std::uint8_t kInitBaseReg = 25;

/// Hard ceiling on loop nesting accepted by the lowering. Software nests
/// deeper than the pool-register count recycle pool slots by
/// re-materializing the (constant) bound in every latch, so the ceiling is
/// a sanity bound, not a register-allocation limit.
inline constexpr unsigned kMaxLoweringDepth = 32;

/// Lowers `kernel` for `machine` against a ZOLC of `geometry` (ignored for
/// non-ZOLC machines; the default is the paper's prototype geometry). The
/// resulting program is complete and runnable (terminated by halt) at
/// `base`. Returns an Error for malformed kernels (zero-trip loops,
/// reserved-register use, raw control flow in KOps, index registers written
/// by the body, nesting too deep, or ZOLC capacity overruns that have no
/// software fallback).
[[nodiscard]] Result<Program> lower(
    std::span<const KNode> kernel, MachineKind machine,
    std::uint32_t base = 0x1000,
    const zolc::ZolcGeometry& geometry = zolc::ZolcGeometry{});

}  // namespace zolcsim::codegen

#endif  // ZOLCSIM_CODEGEN_LOWER_HPP
