// Lowered program image plus the machine-configuration taxonomy of the
// paper's evaluation (Section 3).
#ifndef ZOLCSIM_CODEGEN_PROGRAM_HPP
#define ZOLCSIM_CODEGEN_PROGRAM_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/code_image.hpp"
#include "isa/instruction.hpp"
#include "mem/memory.hpp"
#include "zolc/config.hpp"

namespace zolcsim::codegen {

/// Machine configurations evaluated in the paper.
enum class MachineKind : std::uint8_t {
  kXrDefault,  ///< unmodified core: software loops
  kXrHrdwil,   ///< branch-decrement (dbne) loop back-edges
  kUZolc,      ///< core + uZOLC (single hardware loop)
  kZolcLite,   ///< core + ZOLClite
  kZolcFull,   ///< core + ZOLCfull
};

[[nodiscard]] constexpr std::string_view machine_name(
    MachineKind kind) noexcept {
  switch (kind) {
    case MachineKind::kXrDefault: return "XRdefault";
    case MachineKind::kXrHrdwil:  return "XRhrdwil";
    case MachineKind::kUZolc:     return "uZOLC";
    case MachineKind::kZolcLite:  return "ZOLClite";
    case MachineKind::kZolcFull:  return "ZOLCfull";
  }
  return "?";
}

/// The ZOLC variant a machine carries, if any.
[[nodiscard]] constexpr std::optional<zolc::ZolcVariant> machine_zolc_variant(
    MachineKind kind) noexcept {
  switch (kind) {
    case MachineKind::kUZolc:    return zolc::ZolcVariant::kMicro;
    case MachineKind::kZolcLite: return zolc::ZolcVariant::kLite;
    case MachineKind::kZolcFull: return zolc::ZolcVariant::kFull;
    default:                     return std::nullopt;
  }
}

inline constexpr MachineKind kAllMachines[] = {
    MachineKind::kXrDefault, MachineKind::kXrHrdwil, MachineKind::kUZolc,
    MachineKind::kZolcLite, MachineKind::kZolcFull};

/// A lowered, runnable program (terminated by halt).
struct Program {
  std::uint32_t base = 0;
  std::vector<isa::Instruction> code;
  MachineKind machine = MachineKind::kXrDefault;

  unsigned init_instructions = 0;  ///< ZOLC init prologue length (incl. li's)
  unsigned hw_loop_count = 0;      ///< loops managed by ZOLC hardware
  unsigned sw_loop_count = 0;      ///< loops lowered to software
  std::vector<std::string> notes;  ///< fallback / demotion decisions

  /// Encodes and loads the image into simulator memory at `base`.
  void load_into(mem::Memory& memory) const;

  /// Non-owning predecoded view of `code` for the simulators' fetch fast
  /// path. Valid only while this Program (and its `code` vector) is alive
  /// and unmodified.
  [[nodiscard]] isa::CodeImage image() const noexcept {
    return isa::CodeImage{base, code.data(), code.size()};
  }

  [[nodiscard]] std::size_t size_words() const noexcept { return code.size(); }
};

}  // namespace zolcsim::codegen

#endif  // ZOLCSIM_CODEGEN_PROGRAM_HPP
