#include "codegen/program.hpp"

#include "isa/encoding.hpp"

namespace zolcsim::codegen {

void Program::load_into(mem::Memory& memory) const {
  std::vector<std::uint32_t> words;
  words.reserve(code.size());
  for (const isa::Instruction& instr : code) {
    words.push_back(isa::encode(instr));
  }
  memory.load_words(base, words);
}

}  // namespace zolcsim::codegen
